(* Tests for the paper's heuristics: upward ranks, the EST machinery, the
   four schedulers, and the makespan lower bounds.  Hard guarantees
   (schedule validity, bound compliance) are property-tested through the
   Validator oracle on random DAGs. *)

open Helpers

let dex = Toy.dex ()
let dex_platform ~m = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:m ~m_red:m

(* --------------------------------------------------------------- ranks --- *)

let test_ranks_dex () =
  (* rank(T4) = 1; rank(T2) = 2 + (1 + 1/2) = 3.5; rank(T3) = 4.5 + 1.5 = 6;
     rank(T1) = 2 + max(4, 6.5) = 8.5. *)
  let r = Rank.upward_ranks dex in
  check_float "T4" 1. r.(3);
  check_float "T2" 3.5 r.(1);
  check_float "T3" 6. r.(2);
  check_float "T1" 8.5 r.(0)

let test_priority_list_dex () =
  Alcotest.(check (array int)) "rank order" [| 0; 2; 1; 3 |] (Rank.priority_list dex)

let test_priority_list_random_ties () =
  (* Equal-rank tasks: random tie-breaking must still produce a valid
     priority permutation. *)
  let g = Toy.independent ~n:6 ~w_blue:2. ~w_red:2. in
  let order = Rank.priority_list ~rng:(Rng.create 3) g in
  Alcotest.(check (list int)) "permutation" [ 0; 1; 2; 3; 4; 5 ]
    (List.sort compare (Array.to_list order))

let ranks_dominate_children =
  qtest "rank(parent) > rank(child) when durations are positive" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let r = Rank.upward_ranks g in
      Array.for_all (fun (e : Dag.edge) -> r.(e.Dag.src) > r.(e.Dag.dst)) (Dag.edges g))

(* --------------------------------------------------------- sched_state --- *)

(* Two tasks across memories: A on blue, then estimate/commit B on red. *)
let ab_graph () = build_dag ~tasks:[ ("A", 2., 2.); ("B", 2., 2.) ] ~edges:[ (0, 1, 3., 1.) ]

let commit_on st i mu =
  match Sched_state.estimate st i mu with
  | Some e ->
    Sched_state.commit st e;
    e
  | None -> Alcotest.failf "estimate for task %d should be feasible" i

let test_estimate_cross_memory () =
  let g = ab_graph () in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:10. ~m_red:10. in
  let st = Sched_state.create g p in
  check_bool "A ready" true (Sched_state.is_ready st 0);
  check_bool "B not ready" false (Sched_state.is_ready st 1);
  let ea = commit_on st 0 Platform.Blue in
  check_float "A starts immediately" 0. ea.Sched_state.est;
  check_float "A finish recorded" 2. (Sched_state.finish_time st 0);
  (match Sched_state.estimate st 1 Platform.Red with
  | Some e ->
    (* precedence: AFT(A) + C = 3; transfer occupies [2, 3). *)
    check_float "B EST across memories" 3. e.Sched_state.est;
    check_float "B EFT" 5. e.Sched_state.eft;
    check_float "comm batch" 1. e.Sched_state.comm_batch
  | None -> Alcotest.fail "feasible");
  (match Sched_state.estimate st 1 Platform.Blue with
  | Some e -> check_float "B EST same memory" 2. e.Sched_state.est
  | None -> Alcotest.fail "feasible");
  let _ = commit_on st 1 Platform.Red in
  let s = Sched_state.schedule st in
  let r = validate_ok g p s in
  check_float "makespan" 5. r.Validator.makespan;
  (* The transfer is emitted just-in-time: starts at 2, ends at B's start. *)
  let e01 = Dag.edge g 0 in
  Alcotest.(check (option (float 1e-9))) "transfer start" (Some 2.)
    s.Schedule.comm_starts.(e01.Dag.eid)

let test_estimate_memory_infeasible () =
  let g = ab_graph () in
  (* Red memory cannot hold the 3-unit incoming file. *)
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:10. ~m_red:2. in
  let st = Sched_state.create g p in
  let _ = commit_on st 0 Platform.Blue in
  check_bool "red infeasible" true (Sched_state.estimate st 1 Platform.Red = None);
  (match Sched_state.best_estimate st 1 with
  | Some e -> check_bool "falls back to blue" true (e.Sched_state.memory = Platform.Blue)
  | None -> Alcotest.fail "blue should fit")

let test_estimate_output_infeasible () =
  let g = ab_graph () in
  (* A's own output (3 units) exceeds both memories: nothing is schedulable. *)
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:2. ~m_red:2. in
  let st = Sched_state.create g p in
  check_bool "blue none" true (Sched_state.estimate st 0 Platform.Blue = None);
  check_bool "red none" true (Sched_state.estimate st 0 Platform.Red = None)

let test_estimate_not_ready () =
  let g = ab_graph () in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:10. ~m_red:10. in
  let st = Sched_state.create g p in
  check_bool "B has unscheduled parent" true (Sched_state.estimate st 1 Platform.Blue = None)

let test_commit_rejects_double () =
  let g = ab_graph () in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:10. ~m_red:10. in
  let st = Sched_state.create g p in
  let e = Option.get (Sched_state.estimate st 0 Platform.Blue) in
  Sched_state.commit st e;
  Alcotest.check_raises "double commit"
    (Invalid_argument "Sched_state.commit: task already assigned") (fun () ->
      Sched_state.commit st e)

let test_state_copy_isolated () =
  let g = ab_graph () in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:10. ~m_red:10. in
  let st = Sched_state.create g p in
  let _ = commit_on st 0 Platform.Blue in
  let snap = Sched_state.copy st in
  let _ = commit_on st 1 Platform.Red in
  check_int "copy frozen" 1 (Sched_state.n_assigned snap);
  check_int "original advanced" 2 (Sched_state.n_assigned st);
  check_bool "copy can continue independently" true
    (Sched_state.estimate snap 1 Platform.Blue <> None)

let test_free_mem_final_tracks_retained () =
  let g = ab_graph () in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:10. ~m_red:10. in
  let st = Sched_state.create g p in
  let _ = commit_on st 0 Platform.Blue in
  (* A's output file (3 units) is retained in blue until B is scheduled. *)
  check_float "retained" 7. (Sched_state.free_mem_final st Platform.Blue);
  let _ = commit_on st 1 Platform.Blue in
  check_float "released" 10. (Sched_state.free_mem_final st Platform.Blue)

(* Batched vs per-edge comm_mem_EST: when the large incoming file has the
   short transfer and memory only frees up late, the paper's batched window
   (total mass over the max-C window) starts the task strictly later than
   the exact per-prefix check. *)
let test_batched_vs_per_edge () =
  let build () =
    let g =
      build_dag
        ~tasks:[ ("D", 1., 1.); ("E", 1., 1.); ("A", 1., 1.); ("B", 1., 1.); ("X", 1., 1.) ]
        ~edges:[ (0, 1, 8., 1.); (2, 4, 6., 1.); (3, 4, 4., 4.) ]
    in
    (g, 0, 1, 2, 3, 4)
  in
  let p = Platform.make ~p_blue:2 ~p_red:1 ~m_blue:infinity ~m_red:12. in
  let est_of options =
    let g, d, e, a, bb, x = build () in
    let st = Sched_state.create ~options g p in
    let commit i mu = Sched_state.commit st (Option.get (Sched_state.estimate st i mu)) in
    commit d Platform.Red;
    commit e Platform.Red;
    (* D's 8-unit file occupies red until E completes at t = 2. *)
    commit a Platform.Blue;
    commit bb Platform.Blue;
    (Option.get (Sched_state.estimate st x Platform.Red)).Sched_state.est
  in
  let per_edge = est_of Sched_state.default_options in
  let batched =
    est_of { Sched_state.default_options with Sched_state.comm_mode = Sched_state.Jit_batched }
  in
  (* precedence = AFT(B) + C = 5; per-edge memory bound is 4 (covered by
     precedence); the batched window needs free >= 10 from t = 2 on, plus
     the max transfer time 4, i.e. EST 6. *)
  check_float "per-edge EST" 5. per_edge;
  check_float "batched EST" 6. batched

(* ------------------------------------------------------ paper toy runs --- *)

let test_heft_dex () =
  let o = Outcome.run Heuristics.HEFT dex (dex_platform ~m:infinity) in
  check_float "makespan" 6. o.Outcome.makespan;
  check_float "blue peak" 3. o.Outcome.peak_blue;
  check_float "red peak" 5. o.Outcome.peak_red

let test_minmin_dex () =
  let o = Outcome.run Heuristics.MinMin dex (dex_platform ~m:infinity) in
  check_float "makespan" 7. o.Outcome.makespan

let test_memheft_dex_tight () =
  let o = Outcome.run Heuristics.MemHEFT dex (dex_platform ~m:4.) in
  check_bool "feasible at 4" true o.Outcome.feasible;
  check_bool "peaks within bound" true (o.Outcome.peak_blue <= 4. && o.Outcome.peak_red <= 4.)

let test_memminmin_dex_tight () =
  let o = Outcome.run Heuristics.MemMinMin dex (dex_platform ~m:4.) in
  check_bool "feasible at 4" true o.Outcome.feasible;
  check_bool "peaks within bound" true (o.Outcome.peak_blue <= 4. && o.Outcome.peak_red <= 4.)

let test_heuristics_dex_infeasible () =
  List.iter
    (fun h ->
      let o = Outcome.run h dex (dex_platform ~m:3.) in
      check_bool "infeasible at 3" false o.Outcome.feasible;
      check_bool "has failure reason" true (o.Outcome.failure <> None))
    [ Heuristics.MemHEFT; Heuristics.MemMinMin ]

let test_failure_counts_progress () =
  match Heuristics.memheft dex (dex_platform ~m:3.) with
  | Ok _ -> Alcotest.fail "should be infeasible"
  | Error f -> check_bool "scheduled fewer than all" true (f.Heuristics.n_scheduled < 4)

(* --------------------------------------------- oracle property testing --- *)

(* Any schedule a heuristic returns must pass the full SS 3 oracle. *)
let heuristic_validity h =
  qtest ~count:60
    (Printf.sprintf "%s schedules pass the oracle" (Heuristics.name_to_string h))
    QCheck.(pair seed_arb (int_range 1 3))
    (fun (seed, procs) ->
      let g = dag_of_seed seed in
      let heft_peak =
        let p = Platform.unbounded ~p_blue:procs ~p_red:procs in
        Outcome.peak_max (Outcome.run Heuristics.HEFT g p)
      in
      (* Bounds from 60% of HEFT's peak upwards exercise both feasible and
         infeasible regions. *)
      let bound = 0.6 *. heft_peak in
      let p = Platform.make ~p_blue:procs ~p_red:procs ~m_blue:bound ~m_red:bound in
      match Heuristics.run h g p with
      | Error _ -> true (* refusals are fine; validity is what we check *)
      | Ok s -> (
        let check_p =
          if Heuristics.is_memory_aware h then p
          else Platform.with_bounds p ~m_blue:infinity ~m_red:infinity
        in
        match Validator.validate g check_p s with Ok _ -> true | Error _ -> false))

let memory_bounds_respected =
  qtest ~count:60 "memory-aware schedules never exceed the bounds"
    QCheck.(pair seed_arb (int_range 60 100))
    (fun (seed, pct) ->
      let g = dag_of_seed seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
      let bound = float_of_int pct /. 100. *. peak in
      let p = Platform.with_bounds p0 ~m_blue:bound ~m_red:bound in
      List.for_all
        (fun h ->
          let o = Outcome.run h g p in
          (not o.Outcome.feasible)
          || (o.Outcome.peak_blue <= bound +. 1e-6 && o.Outcome.peak_red <= bound +. 1e-6))
        [ Heuristics.MemHEFT; Heuristics.MemMinMin ])

let infeasible_below_memreq =
  qtest ~count:60 "bounds below a task requirement are always refused" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let memreq_max = ref 0. in
      for i = 0 to Dag.n_tasks g - 1 do
        memreq_max := max !memreq_max (Dag.mem_req g i)
      done;
      let bound = 0.9 *. !memreq_max in
      let p = platform bound in
      List.for_all
        (fun h -> not (Outcome.run h g p).Outcome.feasible)
        [ Heuristics.MemHEFT; Heuristics.MemMinMin ])

let lower_bound_is_valid =
  qtest ~count:60 "lower bound under every heuristic makespan" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let p = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let lb = Lower_bound.makespan g p in
      List.for_all
        (fun h ->
          let o = Outcome.run h g p in
          o.Outcome.makespan +. 1e-6 >= lb)
        Heuristics.all_names)

let heuristics_deterministic =
  qtest ~count:30 "same instance, same schedule" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let p = platform 1e9 in
      List.for_all
        (fun h ->
          let a = Outcome.run h g p and b = Outcome.run h g p in
          a.Outcome.makespan = b.Outcome.makespan)
        Heuristics.all_names)

let options_variants_valid =
  let opts =
    [ ("batched", { Sched_state.default_options with Sched_state.comm_mode = Sched_state.Jit_batched });
      ("eager", { Sched_state.default_options with Sched_state.comm_mode = Sched_state.Eager });
      ("insertion", { Sched_state.default_options with Sched_state.proc_policy = Sched_state.Insertion })
    ]
  in
  List.map
    (fun (name, options) ->
      qtest ~count:40 (Printf.sprintf "%s variant passes the oracle" name)
        seed_arb
        (fun seed ->
          let g = dag_of_seed seed in
          let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
          let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
          let p = Platform.with_bounds p0 ~m_blue:(0.7 *. peak) ~m_red:(0.7 *. peak) in
          List.for_all
            (fun h ->
              match Heuristics.run ~options h g p with
              | Error _ -> true
              | Ok s -> Result.is_ok (Validator.validate g p s))
            [ Heuristics.MemHEFT; Heuristics.MemMinMin ]))
    opts

(* MemHEFT with bounds at HEFT's measured (planned) peaks reproduces HEFT
   exactly (SS 6.2.1) -- every placement coincides, not just the makespan. *)
let memheft_replays_heft =
  qtest ~count:60 "MemHEFT at HEFT's planned peaks = HEFT" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let heft_s, (pb, pr) = Heuristics.heft_measured g p0 in
      let p = Platform.with_bounds p0 ~m_blue:pb ~m_red:pr in
      match Heuristics.memheft g p with
      | Error _ -> false
      | Ok s ->
        List.for_all
          (fun i ->
            s.Schedule.starts.(i) = heft_s.Schedule.starts.(i)
            && s.Schedule.procs.(i) = heft_s.Schedule.procs.(i))
          (List.init (Dag.n_tasks g) Fun.id))

(* The planned peak dominates the event-trace peak. *)
let planned_peak_dominates =
  qtest ~count:60 "planned peak >= trace peak" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let s, (pb, pr) = Heuristics.heft_measured g p0 in
      let tb, tr = Events.peaks g p0 s in
      pb +. 1e-9 >= tb && pr +. 1e-9 >= tr)

(* Zero-duration broadcast relays must not break anything. *)
let test_heuristics_on_cholesky () =
  let g = Cholesky.generate ~n:4 () in
  let p = Platform.make ~p_blue:2 ~p_red:1 ~m_blue:12. ~m_red:12. in
  List.iter
    (fun h ->
      match Heuristics.run h g p with
      | Ok s ->
        let check_p =
          match h with
          | Heuristics.HEFT | Heuristics.MinMin ->
            Platform.with_bounds p ~m_blue:infinity ~m_red:infinity
          | _ -> p
        in
        ignore (validate_ok g check_p s)
      | Error f -> Alcotest.failf "%s failed: %s" (Heuristics.name_to_string h) f.Heuristics.reason)
    Heuristics.all_names

let test_rng_tiebreak_valid () =
  let g = dag_of_seed 77 in
  let p = platform 1e9 in
  List.iter
    (fun seed ->
      match Heuristics.memheft ~rng:(Rng.create seed) g p with
      | Ok s -> ignore (validate_ok g p s)
      | Error f -> Alcotest.failf "unexpected failure: %s" f.Heuristics.reason)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------- outcome --- *)

let test_outcome_feasible_fields () =
  let o = Outcome.run Heuristics.MemHEFT dex (dex_platform ~m:5.) in
  check_bool "feasible" true o.Outcome.feasible;
  check_bool "schedule present" true (o.Outcome.schedule <> None);
  check_bool "no failure" true (o.Outcome.failure = None);
  check_float "peak max" 5. (Outcome.peak_max o)

let test_outcome_infeasible_fields () =
  let o = Outcome.run Heuristics.MemMinMin dex (dex_platform ~m:3.) in
  check_bool "not feasible" false o.Outcome.feasible;
  check_bool "nan makespan" true (Float.is_nan o.Outcome.makespan);
  check_bool "no schedule" true (o.Outcome.schedule = None)

let test_outcome_pp () =
  let feasible = Outcome.run Heuristics.HEFT dex (dex_platform ~m:infinity) in
  let infeasible = Outcome.run Heuristics.MemHEFT dex (dex_platform ~m:3.) in
  check_bool "pp feasible" true (String.length (Format.asprintf "%a" Outcome.pp feasible) > 0);
  check_bool "pp infeasible" true
    (let s = Format.asprintf "%a" Outcome.pp infeasible in
     String.length s > 0 && String.contains s 'i')

(* ---------------------------------------------------------- extensions --- *)

let extension_bounds_respected =
  qtest ~count:40 "extension heuristics respect the bounds" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
      let bound = 0.8 *. peak in
      let p = Platform.with_bounds p0 ~m_blue:bound ~m_red:bound in
      List.for_all
        (fun h ->
          let o = Outcome.run h g p in
          (not o.Outcome.feasible)
          || (o.Outcome.peak_blue <= bound +. 1e-6 && o.Outcome.peak_red <= bound +. 1e-6))
        [ Heuristics.MemMaxMin; Heuristics.MemSufferage ])

let test_sufferage_prefers_gap () =
  (* Two independent tasks; one strongly prefers red.  Sufferage must place
     the high-gap task on its preferred memory first. *)
  let g = build_dag ~tasks:[ ("picky", 10., 1.); ("flexible", 2., 2.) ] ~edges:[] in
  let picky = 0 and flexible = 1 in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:10. ~m_red:10. in
  (match Heuristics.memsufferage g p with
  | Ok s ->
    check_bool "picky on red" true (Schedule.memory_of p s picky = Platform.Red);
    check_float "both at 0" 0. s.Schedule.starts.(flexible)
  | Error _ -> Alcotest.fail "feasible");
  ignore flexible

let test_maxmin_schedules_long_first () =
  (* MaxMin gives the long task the head start. *)
  let g = build_dag ~tasks:[ ("long", 10., 10.); ("short", 1., 1.) ] ~edges:[] in
  let long = 0 and short = 1 in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:10. ~m_red:10. in
  match Heuristics.run Heuristics.MaxMin g p with
  | Ok s ->
    check_float "long first" 0. s.Schedule.starts.(long);
    ignore short
  | Error _ -> Alcotest.fail "feasible"

(* ---------------------------------------------------------- multistart --- *)

let test_multistart_matches_single_run () =
  let g = dag_of_seed 5 in
  let p = platform 1e9 in
  let m = Multistart.memheft ~restarts:0 g p in
  check_int "one run" 1 m.Multistart.n_runs;
  check_int "feasible" 1 m.Multistart.n_feasible;
  match (m.Multistart.best, Heuristics.memheft g p) with
  | Ok a, Ok b ->
    check_float "same schedule as plain memheft"
      (Schedule.makespan g p b) (Schedule.makespan g p a)
  | _ -> Alcotest.fail "both feasible"

let multistart_never_worse =
  qtest ~count:30 "multistart best <= deterministic memheft" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
      let p = Platform.with_bounds p0 ~m_blue:(0.8 *. peak) ~m_red:(0.8 *. peak) in
      let m = Multistart.memheft ~restarts:4 g p in
      match (m.Multistart.best, Heuristics.memheft g p) with
      | Ok best, Ok det -> Schedule.makespan g p best <= Schedule.makespan g p det +. 1e-9
      | Ok _, Error _ -> true (* restart recovered feasibility *)
      | Error _, Ok _ -> false (* must never lose the deterministic run *)
      | Error _, Error _ -> true)

let multistart_schedules_valid =
  qtest ~count:20 "multistart schedules pass the oracle" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
      let p = Platform.with_bounds p0 ~m_blue:(0.75 *. peak) ~m_red:(0.75 *. peak) in
      match (Multistart.memheft ~restarts:3 g p).Multistart.best with
      | Ok s -> Result.is_ok (Validator.validate g p s)
      | Error _ -> true)

let test_multistart_improvement_bounds () =
  let g = dag_of_seed 9 in
  let p = platform 1e9 in
  let m = Multistart.memheft ~restarts:5 g p in
  let imp = Multistart.improvement m in
  check_bool "in (0, 1]" true (imp > 0. && imp <= 1. +. 1e-9)

(* --------------------------------------------------------- lower bound --- *)

let test_lower_bound_dex () =
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:infinity ~m_red:infinity in
  check_float "critical path" 5. (Lower_bound.critical_path dex);
  (* total min work = 1 + 2 + 3 + 1 = 7 over 2 processors. *)
  check_float "work area" 3.5 (Lower_bound.work_area dex p);
  check_float "combined" 5. (Lower_bound.makespan dex p)

let test_lower_bound_many_procs () =
  let p = Platform.make ~p_blue:8 ~p_red:8 ~m_blue:infinity ~m_red:infinity in
  check_float "cp dominates" 5. (Lower_bound.makespan dex p)

let () =
  Alcotest.run "heuristics"
    ([ ( "rank",
         [ Alcotest.test_case "dex values" `Quick test_ranks_dex;
           Alcotest.test_case "dex priority list" `Quick test_priority_list_dex;
           Alcotest.test_case "random tie-break" `Quick test_priority_list_random_ties;
           ranks_dominate_children ] );
       ( "sched_state",
         [ Alcotest.test_case "cross-memory estimate" `Quick test_estimate_cross_memory;
           Alcotest.test_case "memory-infeasible estimate" `Quick test_estimate_memory_infeasible;
           Alcotest.test_case "output-infeasible estimate" `Quick test_estimate_output_infeasible;
           Alcotest.test_case "not ready" `Quick test_estimate_not_ready;
           Alcotest.test_case "double commit" `Quick test_commit_rejects_double;
           Alcotest.test_case "copy isolation" `Quick test_state_copy_isolated;
           Alcotest.test_case "retained memory" `Quick test_free_mem_final_tracks_retained;
           Alcotest.test_case "batched vs per-edge EST" `Quick test_batched_vs_per_edge ] );
       ( "paper-toy",
         [ Alcotest.test_case "HEFT on dex" `Quick test_heft_dex;
           Alcotest.test_case "MinMin on dex" `Quick test_minmin_dex;
           Alcotest.test_case "MemHEFT at M=4" `Quick test_memheft_dex_tight;
           Alcotest.test_case "MemMinMin at M=4" `Quick test_memminmin_dex_tight;
           Alcotest.test_case "infeasible at M=3" `Quick test_heuristics_dex_infeasible;
           Alcotest.test_case "failure reports progress" `Quick test_failure_counts_progress ] );
       ( "oracle-properties",
         List.map heuristic_validity (Heuristics.all_names @ Heuristics.extension_names)
         @ [ memory_bounds_respected; infeasible_below_memreq; lower_bound_is_valid;
             heuristics_deterministic; memheft_replays_heft; planned_peak_dominates ]
         @ options_variants_valid );
       ( "integration",
         [ Alcotest.test_case "cholesky with relays" `Quick test_heuristics_on_cholesky;
           Alcotest.test_case "random tie-break validity" `Quick test_rng_tiebreak_valid ] );
       ( "outcome",
         [ Alcotest.test_case "feasible fields" `Quick test_outcome_feasible_fields;
           Alcotest.test_case "infeasible fields" `Quick test_outcome_infeasible_fields;
           Alcotest.test_case "pp" `Quick test_outcome_pp ] );
       ( "extensions",
         [ extension_bounds_respected;
           Alcotest.test_case "sufferage prefers gap" `Quick test_sufferage_prefers_gap;
           Alcotest.test_case "maxmin long first" `Quick test_maxmin_schedules_long_first ] );
       ( "multistart",
         [ Alcotest.test_case "restarts=0 is plain memheft" `Quick test_multistart_matches_single_run;
           multistart_never_worse;
           multistart_schedules_valid;
           Alcotest.test_case "improvement ratio" `Quick test_multistart_improvement_bounds ] );
       ( "lower-bound",
         [ Alcotest.test_case "dex" `Quick test_lower_bound_dex;
           Alcotest.test_case "many processors" `Quick test_lower_bound_many_procs;
           Alcotest.test_case "min memory" `Quick (fun () ->
               check_float "dex min memory" 4. (Lower_bound.min_memory dex);
               check_bool "infeasible below" true
                 (Lower_bound.provably_infeasible dex (dex_platform ~m:3.));
               check_bool "not provable at 4" false
                 (Lower_bound.provably_infeasible dex (dex_platform ~m:4.)));
           qtest ~count:40 "provably infeasible instances are refused" seed_arb (fun seed ->
               let g = dag_of_seed seed in
               let bound = 0.9 *. Lower_bound.min_memory g in
               let p = platform bound in
               Lower_bound.provably_infeasible g p
               && (not (Outcome.run Heuristics.MemHEFT g p).Outcome.feasible)
               && not (Outcome.run Heuristics.MemMinMin g p).Outcome.feasible) ] ) ])
