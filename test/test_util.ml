(* Tests for the utility substrate: Rng, Staircase, Pqueue, Stats, Csv,
   Table. *)

open Helpers

(* ---------------------------------------------------------------- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different seeds diverge" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues the stream" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  check_bool "split differs from parent" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let g = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int g 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_incl_bounds () =
  let g = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int_incl g (-5) 5 in
    check_bool "in range" true (v >= -5 && v <= 5)
  done

let test_rng_int_rejects () =
  let g = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int g 0))

let test_rng_float_bounds () =
  let g = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float g 2.5 in
    check_bool "in range" true (v >= 0. && v < 2.5)
  done

let test_rng_int_covers () =
  (* All residues of a small bound appear. *)
  let g = Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int g 5) <- true
  done;
  check_bool "all values hit" true (Array.for_all Fun.id seen)

let rng_shuffle_permutation =
  qtest "shuffle is a permutation" QCheck.(pair small_int (list small_int)) (fun (seed, l) ->
      let a = Array.of_list l in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let rng_sample_distinct =
  qtest "sample_distinct: k distinct sorted values in range"
    QCheck.(pair small_int (pair (int_range 0 30) (int_range 0 30)))
    (fun (seed, (a, b)) ->
      let k = min a b and n = max a b in
      let s = Rng.sample_distinct (Rng.create seed) ~k ~n in
      List.length s = k
      && List.for_all (fun v -> v >= 0 && v < n) s
      && List.sort_uniq compare s = s)

(* ---------------------------------------------------------- Staircase --- *)

let test_stair_constant () =
  let s = Staircase.create 5. in
  check_float "value at 0" 5. (Staircase.value s 0.);
  check_float "value far" 5. (Staircase.value s 1e9);
  check_float "final" 5. (Staircase.final_value s)

let test_stair_add_from () =
  let s = Staircase.create 10. in
  Staircase.add_from s 2. (-3.);
  check_float "before" 10. (Staircase.value s 1.9);
  check_float "at" 7. (Staircase.value s 2.);
  check_float "after" 7. (Staircase.value s 100.);
  Staircase.add_from s 5. 3.;
  check_float "released" 10. (Staircase.value s 5.);
  check_float "middle still low" 7. (Staircase.value s 3.)

let test_stair_add_range () =
  let s = Staircase.create 0. in
  Staircase.add_range s 1. 4. 2.;
  check_float "in range" 2. (Staircase.value s 2.);
  check_float "outside left" 0. (Staircase.value s 0.5);
  check_float "outside right" 0. (Staircase.value s 4.)

let test_stair_min_from () =
  let s = Staircase.create 10. in
  Staircase.add_range s 2. 4. (-6.);
  check_float "min over all" 4. (Staircase.min_from s 0.);
  check_float "min after dip" 10. (Staircase.min_from s 4.);
  check_float "min inside dip" 4. (Staircase.min_from s 3.)

let test_stair_min_on () =
  let s = Staircase.create 10. in
  Staircase.add_range s 2. 4. (-6.);
  check_float "window before dip" 10. (Staircase.min_on s 0. 2.);
  check_float "window over dip" 4. (Staircase.min_on s 0. 3.);
  check_float "window after" 10. (Staircase.min_on s 4. 9.)

let test_stair_suffix () =
  let s = Staircase.create 10. in
  Staircase.add_range s 2. 4. (-6.);
  (match Staircase.earliest_suffix_ge s ~level:5. ~from:0. with
  | Some t -> check_float "suffix after dip" 4. t
  | None -> Alcotest.fail "expected a time");
  (match Staircase.earliest_suffix_ge s ~level:3. ~from:0. with
  | Some t -> check_float "level below dip: immediately" 0. t
  | None -> Alcotest.fail "expected a time");
  (match Staircase.earliest_suffix_ge s ~level:3. ~from:1. with
  | Some t -> check_float "from respected" 1. t
  | None -> Alcotest.fail "expected a time")

let test_stair_suffix_infeasible () =
  let s = Staircase.create 10. in
  Staircase.add_from s 3. (-8.);
  check_bool "tail too low" true (Staircase.earliest_suffix_ge s ~level:5. ~from:0. = None)

let test_stair_infinite_capacity () =
  let s = Staircase.create infinity in
  Staircase.add_from s 1. (-5.);
  check_float "still infinite" infinity (Staircase.value s 2.);
  match Staircase.earliest_suffix_ge s ~level:1e12 ~from:0. with
  | Some t -> check_float "always feasible" 0. t
  | None -> Alcotest.fail "infinite capacity must be feasible"

let test_stair_copy_isolated () =
  let s = Staircase.create 5. in
  let c = Staircase.copy s in
  Staircase.add_from s 1. (-2.);
  check_float "copy untouched" 5. (Staircase.value c 2.);
  check_float "original changed" 3. (Staircase.value s 2.)

let test_stair_snap_regression () =
  (* Regression for the breakpoint float-equality bug: an update eps-close to
     an existing breakpoint used to compare times with [<>] and split a
     sliver step; it must snap onto the breakpoint instead. *)
  let s = Staircase.create 10. in
  Staircase.add_from s 0.1 (-1.);
  let len = Staircase.length s in
  Staircase.add_from s (0.1 +. 1e-12) (-1.);
  check_int "no sliver step (from above)" len (Staircase.length s);
  check_float "snapped update applied" 8. (Staircase.value s 0.2);
  check_float "before the breakpoint unchanged" 10. (Staircase.value s 0.05);
  Staircase.add_from s (0.1 -. 1e-12) (-1.);
  check_int "no sliver step (from below)" len (Staircase.length s);
  check_float "applied at the breakpoint" 7. (Staircase.value s 0.1)

(* Generator for update sequences whose times land exactly on, eps-close to,
   and just beyond existing breakpoints: (half-integer time, delta, jitter
   index).  Jitters below eps must snap; 1e-8 legitimately splits. *)
let stair_jittered_ops = QCheck.(list (triple (int_range 0 40) (int_range (-3) 3) (int_range 0 4)))

let stair_apply_jittered s ops =
  let jit = [| 0.; 1e-12; -1e-12; 4e-10; 1e-8 |] in
  List.iter
    (fun (t2, d, j) ->
      let t = Float.max 0. ((float_of_int t2 /. 2.) +. jit.(j)) in
      if d <> 0 then Staircase.add_from s t (float_of_int d))
    ops

let stair_gap_invariant =
  qtest ~count:300 "gaps > eps and values coalesced under eps-close updates" stair_jittered_ops
    (fun ops ->
      let s = Staircase.create 50. in
      stair_apply_jittered s ops;
      let rec ok = function
        | (x0, v0) :: ((x1, v1) :: _ as tl) ->
          x1 -. x0 > 1e-9 && abs_float (v1 -. v0) > 1e-9 && ok tl
        | _ -> true
      in
      match Staircase.breakpoints s with
      | (x0, _) :: _ as bps -> Float.equal x0 0. && ok bps
      | [] -> false)

let stair_fast_queries_match_scan =
  qtest ~count:300 "min_from / earliest_suffix_ge match the linear scans bit-for-bit"
    stair_jittered_ops (fun ops ->
      let s = Staircase.create 50. in
      stair_apply_jittered s ops;
      let probes = List.init 45 (fun k -> float_of_int k /. 2.) in
      List.for_all
        (fun t ->
          Float.equal (Staircase.min_from s t) (Staircase.min_from_scan s t)
          && List.for_all
               (fun level ->
                 Staircase.earliest_suffix_ge s ~level ~from:t
                 = Staircase.earliest_suffix_ge_scan s ~level ~from:t)
               [ 30.; 45.; 50.; 50.5; 60. ])
        probes)

let stair_min_from_brute =
  qtest ~count:300 "min_from agrees with brute force on a grid"
    QCheck.(list (pair (int_range 0 20) (int_range (-5) 5)))
    (fun updates ->
      let s = Staircase.create 100. in
      List.iter (fun (t, d) -> Staircase.add_from s (float_of_int t) (float_of_int d)) updates;
      let value_ref t =
        100.
        +. List.fold_left
             (fun acc (t0, d) -> if float_of_int t0 <= t then acc +. float_of_int d else acc)
             0. updates
      in
      List.for_all
        (fun k ->
          let t = float_of_int k /. 2. in
          let brute =
            List.fold_left
              (fun m j -> Float.min m (value_ref (Float.max t (float_of_int j /. 2.))))
              infinity (List.init 45 Fun.id)
          in
          abs_float (Staircase.min_from s t -. brute) < 1e-6)
        (List.init 41 Fun.id))

(* Reference implementation: a staircase as an explicit list of (t, delta)
   updates, evaluated naively. *)
let stair_matches_reference =
  qtest ~count:300 "staircase matches naive reference"
    QCheck.(list (pair (int_range 0 20) (int_range (-5) 5)))
    (fun updates ->
      let s = Staircase.create 100. in
      let apply (t, d) = Staircase.add_from s (float_of_int t) (float_of_int d) in
      List.iter apply updates;
      let reference t =
        100.
        +. List.fold_left
             (fun acc (t0, d) -> if float_of_int t0 <= t then acc +. float_of_int d else acc)
             0. updates
      in
      List.for_all
        (fun probe ->
          let t = float_of_int probe /. 2. in
          abs_float (Staircase.value s t -. reference t) < 1e-6)
        (List.init 45 Fun.id))

let stair_suffix_is_correct =
  qtest ~count:300 "earliest_suffix_ge is the true infimum"
    QCheck.(pair (list (pair (int_range 0 20) (int_range (-5) 5))) (int_range 80 120))
    (fun (updates, level) ->
      let level = float_of_int level in
      let s = Staircase.create 100. in
      List.iter (fun (t, d) -> Staircase.add_from s (float_of_int t) (float_of_int d)) updates;
      let ok_from t =
        (* suffix check on a discrete probe grid (updates at integer times) *)
        List.for_all
          (fun k ->
            let t' = Float.max t (float_of_int k /. 2.) in
            Staircase.value s t' +. 1e-6 >= level)
          (List.init 45 Fun.id)
        && Staircase.final_value s +. 1e-6 >= level
      in
      match Staircase.earliest_suffix_ge s ~level ~from:0. with
      | None -> not (ok_from 21.)
      | Some t -> ok_from t && (Float.equal t 0. || not (ok_from (t -. 0.25))))

(* The journal must restore the staircase bit-for-bit: after [undo_to] the
   breakpoint list (times and values) and the final value equal those of a
   [copy] taken at the mark, under polymorphic compare (bitwise on floats
   here — every value is a finite sum of the same terms). *)
let stair_journal_undo_bitwise =
  qtest ~count:300 "journal undo_to restores the mark state bit-for-bit"
    QCheck.(triple stair_jittered_ops stair_jittered_ops stair_jittered_ops)
    (fun (pre, mid, post) ->
      let s = Staircase.create 50. in
      stair_apply_jittered s pre;
      Staircase.set_journal s true;
      let same_as snap =
        compare (Staircase.breakpoints s) (Staircase.breakpoints snap) = 0
        && Float.equal (Staircase.final_value s) (Staircase.final_value snap)
        && Staircase.length s = Staircase.length snap
      in
      let m1 = Staircase.mark s in
      let c1 = Staircase.copy s in
      stair_apply_jittered s mid;
      (* marks are LIFO: undo the inner one first, then the outer one *)
      let m2 = Staircase.mark s in
      let c2 = Staircase.copy s in
      stair_apply_jittered s post;
      Staircase.undo_to s m2;
      let inner_ok = same_as c2 in
      Staircase.undo_to s m1;
      inner_ok && same_as c1)

(* ----------------------------------------------------------------- Fp --- *)

let fp_lb_plus_sound =
  qtest ~count:500 "lb_plus: (x -. c) >= t in float arithmetic"
    QCheck.(pair (float_bound_exclusive 1e6) (float_bound_exclusive 1e4))
    (fun (t, c) ->
      let x = Fp.lb_plus t c in
      x -. c >= t && x >= t +. c)

let test_fp_lb_plus_exact () =
  check_float "exact case" 3. (Fp.lb_plus 1. 2.);
  (* the motivating case: times built from non-representable fractions *)
  let t = 62.225000000000001 and c = 4. in
  let x = Fp.lb_plus t c in
  check_bool "window preserved" true (x -. c >= t)

(* The comparators promise bit-identity with the inline forms the validator
   historically used — check the equivalence on random operands. *)
let fp_cmp_agree =
  qtest ~count:500 "eq/leq/geq/lt/gt match their inline forms"
    QCheck.(triple (float_bound_exclusive 1e6) (float_bound_exclusive 1e6) (float_range 0. 1e-3))
    (fun (a, b, eps) ->
      Bool.equal (Fp.eq ~eps a b) (Float.abs (a -. b) <= eps)
      && Bool.equal (Fp.leq ~eps a b) (a <= b +. eps)
      && Bool.equal (Fp.geq ~eps a b) (a >= b -. eps)
      && Bool.equal (Fp.lt ~eps a b) (a < b -. eps)
      && Bool.equal (Fp.gt ~eps a b) (a > b +. eps))

let test_fp_cmp_edges () =
  check_bool "eq within the default eps" true (Fp.eq 1. (1. +. 1e-9));
  check_bool "eq beyond eps" false (Fp.eq 1. (1. +. 1e-3));
  check_bool "gt demands a margin beyond eps" false (Fp.gt (1. +. 1e-9) 1.);
  check_bool "gt past eps" true (Fp.gt 1.01 1.);
  check_bool "lt mirrors gt" true (Fp.lt 1. 1.01);
  check_bool "leq tolerates an eps overshoot" true (Fp.leq (1. +. 1e-9) 1.);
  check_bool "geq tolerates an eps undershoot" true (Fp.geq (1. -. 1e-9) 1.);
  check_bool "lt negates geq" (not (Fp.lt 1. 1.01)) (Fp.geq 1. 1.01)

(* ------------------------------------------------------------- Pqueue --- *)

let test_pqueue_basic () =
  let q = Pqueue.create ~cmp:compare in
  check_bool "empty" true (Pqueue.is_empty q);
  Pqueue.push q 3;
  Pqueue.push q 1;
  Pqueue.push q 2;
  check_int "length" 3 (Pqueue.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Pqueue.peek q);
  Alcotest.(check (option int)) "pop" (Some 1) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop2" (Some 2) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop3" (Some 3) (Pqueue.pop q);
  Alcotest.(check (option int)) "drained" None (Pqueue.pop q)

let test_pqueue_pop_exn () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.check_raises "empty pop_exn" (Invalid_argument "Pqueue.pop_exn: empty queue") (fun () ->
      ignore (Pqueue.pop_exn q))

let test_pqueue_custom_cmp () =
  let q = Pqueue.of_list ~cmp:(fun a b -> compare b a) [ 1; 5; 3 ] in
  Alcotest.(check (list int)) "max-heap order" [ 5; 3; 1 ] (Pqueue.to_sorted_list q)

let pqueue_sorts =
  qtest "pqueue drains in sorted order" QCheck.(list int) (fun l ->
      let q = Pqueue.of_list ~cmp:compare l in
      Pqueue.to_sorted_list q = List.sort compare l)

let test_pqueue_no_leak () =
  (* Regression for the space leak: [grow] used to fill the doubled backing
     array with the pushed element and [pop] never cleared [data.(len)], so
     the queue pinned popped payloads for its whole lifetime.  Popped
     elements must become unreachable while the queue stays live. *)
  let q = Pqueue.create ~cmp:(fun (a, _) (b, _) -> compare a b) in
  let n = 20 (* crosses two capacity doublings, exercising [grow]'s blit *) in
  let w = Weak.create n in
  for k = 0 to n - 1 do
    let payload = (k, Bytes.create 64) in
    Weak.set w k (Some payload);
    Pqueue.push q payload
  done;
  for _ = 1 to n do
    ignore (Pqueue.pop q)
  done;
  Gc.full_major ();
  let leaked = ref 0 in
  for k = 0 to n - 1 do
    if Weak.check w k then incr leaked
  done;
  check_int "popped payloads unreachable" 0 !leaked;
  Pqueue.push q (0, Bytes.create 1);
  check_int "queue still usable" 1 (Pqueue.length q)

(* -------------------------------------------------------------- Stats --- *)

let test_stats_mean () =
  check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check_bool "empty mean is nan" true (Float.is_nan (Stats.mean []))

let test_stats_geomean () = check_float_eps 1e-9 "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ])

let test_stats_stdev () =
  check_float_eps 1e-9 "stdev" 1. (Stats.stdev [ 1.; 2.; 3. ]);
  check_float "single value" 0. (Stats.stdev [ 5. ])

let test_stats_quantile () =
  let xs = [ 1.; 2.; 3.; 4. ] in
  check_float "median interpolates" 2.5 (Stats.median xs);
  check_float "q0" 1. (Stats.quantile 0. xs);
  check_float "q1" 4. (Stats.quantile 1. xs);
  Alcotest.check_raises "out of range" (Invalid_argument "Stats.quantile: q out of [0,1]")
    (fun () -> ignore (Stats.quantile 1.5 xs))

let test_stats_summary () =
  let s = Stats.summarize [ 3.; 1.; 2. ] in
  check_int "n" 3 s.Stats.n;
  check_float "min" 1. s.Stats.min;
  check_float "max" 3. s.Stats.max;
  check_float "median" 2. s.Stats.median

(* ---------------------------------------------------------------- Csv --- *)

let test_csv_escape () =
  check_string "plain" "abc" (Csv.escape_field "abc");
  check_string "comma" "\"a,b\"" (Csv.escape_field "a,b");
  check_string "quote" "\"a\"\"b\"" (Csv.escape_field "a\"b");
  check_string "newline" "\"a\nb\"" (Csv.escape_field "a\nb")

let test_csv_row () = check_string "row" "a,\"b,c\",d" (Csv.row_to_string [ "a"; "b,c"; "d" ])

let test_csv_write_roundtrip () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "memsched_test/sub/test.csv" in
  Csv.write path ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
  let ic = open_in path in
  let lines = List.init 3 (fun _ -> input_line ic) in
  close_in ic;
  Alcotest.(check (list string)) "contents" [ "x,y"; "1,2"; "3,4" ] lines

let test_csv_float_cell () =
  check_string "int-like" "2" (Csv.float_cell 2.);
  check_string "inf" "inf" (Csv.float_cell infinity)

(* -------------------------------------------------------------- Table --- *)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "10"; "200" ] ] in
  let lines = String.split_on_char '\n' s in
  check_int "line count" 5 (List.length lines) (* header, sep, 2 rows, trailing *) ;
  check_bool "separator present" true (String.length (List.nth lines 1) > 0)

let test_table_ragged () =
  let s = Table.render ~header:[ "a" ] [ [ "1"; "2"; "3" ] ] in
  check_bool "ragged rows padded" true (String.length s > 0)

let test_table_cells () =
  check_string "float" "1.500" (Table.cell_f 1.5);
  check_string "nan" "-" (Table.cell_f nan);
  check_string "pct" "42%" (Table.cell_pct 0.42)

let () =
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_incl bounds" `Quick test_rng_int_incl_bounds;
          Alcotest.test_case "int rejects" `Quick test_rng_int_rejects;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "int covers" `Quick test_rng_int_covers;
          rng_shuffle_permutation;
          rng_sample_distinct ] );
      ( "staircase",
        [ Alcotest.test_case "constant" `Quick test_stair_constant;
          Alcotest.test_case "add_from" `Quick test_stair_add_from;
          Alcotest.test_case "add_range" `Quick test_stair_add_range;
          Alcotest.test_case "min_from" `Quick test_stair_min_from;
          Alcotest.test_case "min_on" `Quick test_stair_min_on;
          Alcotest.test_case "earliest_suffix_ge" `Quick test_stair_suffix;
          Alcotest.test_case "suffix infeasible" `Quick test_stair_suffix_infeasible;
          Alcotest.test_case "infinite capacity" `Quick test_stair_infinite_capacity;
          Alcotest.test_case "copy isolation" `Quick test_stair_copy_isolated;
          Alcotest.test_case "eps snap regression" `Quick test_stair_snap_regression;
          stair_gap_invariant;
          stair_fast_queries_match_scan;
          stair_min_from_brute;
          stair_matches_reference;
          stair_suffix_is_correct;
          stair_journal_undo_bitwise ] );
      ( "fp",
        [ fp_lb_plus_sound;
          Alcotest.test_case "lb_plus cases" `Quick test_fp_lb_plus_exact;
          fp_cmp_agree;
          Alcotest.test_case "comparator edges" `Quick test_fp_cmp_edges ] );
      ( "pqueue",
        [ Alcotest.test_case "basic" `Quick test_pqueue_basic;
          Alcotest.test_case "pop_exn" `Quick test_pqueue_pop_exn;
          Alcotest.test_case "custom cmp" `Quick test_pqueue_custom_cmp;
          Alcotest.test_case "no space leak" `Quick test_pqueue_no_leak;
          pqueue_sorts ] );
      ( "stats",
        [ Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
          Alcotest.test_case "stdev" `Quick test_stats_stdev;
          Alcotest.test_case "quantile" `Quick test_stats_quantile;
          Alcotest.test_case "summary" `Quick test_stats_summary ] );
      ( "csv",
        [ Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "row" `Quick test_csv_row;
          Alcotest.test_case "write roundtrip" `Quick test_csv_write_roundtrip;
          Alcotest.test_case "float cell" `Quick test_csv_float_cell ] );
      ( "table",
        [ Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "ragged" `Quick test_table_ragged;
          Alcotest.test_case "cells" `Quick test_table_cells ] ) ]
