(* lib/serve: the binary wire codec, the LRU result cache, the dispatcher
   and the daemon loop itself.

   The pinned contract (server.mli, DESIGN.md): identical request bytes
   produce identical response bytes — for every jobs count, arrival order
   and cache state — and responses stream in request order.  The server
   tests below run the real [Server.serve] over OS pipes: a writer domain
   feeds the request script, the server runs on the test's own domain, and
   responses land in a temp file (so output size never deadlocks the
   pipe). *)

open Helpers

let algos =
  List.map
    (fun h -> Wire.Heuristic h)
    [ Heuristics.HEFT; Heuristics.MinMin; Heuristics.MemHEFT; Heuristics.MemMinMin;
      Heuristics.MaxMin; Heuristics.Sufferage; Heuristics.MemMaxMin; Heuristics.MemSufferage ]
  @ [ Wire.Multistart; Wire.Exact ]

let request ?(id = 1L) ?(algo = Wire.Heuristic Heuristics.MemHEFT) ?(seed = 7L) ?(restarts = 2)
    ?(node_limit = 5_000) ?platform g =
  let platform = Option.value platform ~default:(Helpers.platform 1e6) in
  { Wire.id; algo; seed; restarts; node_limit; platform; dag = g }

let req_frame r = Wire.frame (Wire.encode_message (Wire.Request r))

(* ------------------------------------------------------------------ codec *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; String.make 300 '\xAB' ] in
  let stream = String.concat "" (List.map Wire.frame payloads) in
  let rec pull pos acc =
    match Wire.next_frame stream ~pos with
    | Ok None -> List.rev acc
    | Ok (Some (p, next)) -> pull next (p :: acc)
    | Error e -> Alcotest.failf "next_frame: %s" (Wire.error_to_string e)
  in
  Alcotest.(check (list string)) "frames round-trip" payloads (pull 0 [])

let test_oversized_frame () =
  (match Wire.frame (String.make 10 ' ') with
  | s -> check_int "prefix+payload" 14 (String.length s));
  Alcotest.check_raises "frame refuses oversized payloads"
    (Invalid_argument "Wire.frame: payload exceeds max_frame") (fun () ->
      ignore (Wire.frame (String.make (Wire.max_frame + 1) ' ')));
  let huge = Bytes.create 8 in
  Bytes.set_int32_be huge 0 0xFFFF_FFFFl;
  match Wire.next_frame (Bytes.unsafe_to_string huge) ~pos:0 with
  | Error (Wire.Oversized _) -> ()
  | _ -> Alcotest.fail "declared 4 GiB payload not rejected as Oversized"

let request_fixpoint =
  qtest ~count:200 "request encode-decode-encode is the identity"
    QCheck.(pair seed_arb (int_range 0 9))
    (fun (seed, k) ->
      let g = dag_of_seed seed in
      let r = request ~id:(Int64.of_int seed) ~algo:(List.nth algos k) g in
      let payload = Wire.encode_message (Wire.Request r) in
      match Wire.decode_message payload with
      | Ok m -> Wire.encode_message m = payload
      | Error e -> QCheck.Test.fail_reportf "decode: %s" (Wire.error_to_string e))

let response_fixpoint =
  qtest ~count:100 "response encode-decode-encode is the identity"
    QCheck.(pair seed_arb (int_range 0 7))
    (fun (seed, k) ->
      let g = dag_of_seed ~size:8 seed in
      let r = request ~algo:(List.nth algos k) g in
      let body = Serve_dispatch.compute r in
      let payload = Wire.encode_message (Wire.Response { Wire.rid = r.Wire.id; body }) in
      match Wire.decode_message payload with
      | Ok m -> Wire.encode_message m = payload
      | Error e -> QCheck.Test.fail_reportf "decode: %s" (Wire.error_to_string e))

let decode_total =
  qtest ~count:500 "decoding arbitrary bytes never raises" QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      (match Wire.decode_message s with Ok _ | Error _ -> ());
      (match Wire.decode_stream s with Ok _ | Error _ -> ());
      true)

let test_cache_key_quotient () =
  let g = dag_of_seed 3 in
  let p1 = Wire.encode_message (Wire.Request (request ~id:1L g)) in
  let p2 = Wire.encode_message (Wire.Request (request ~id:0xDEADBEEFL g)) in
  let p3 = Wire.encode_message (Wire.Request (request ~id:1L ~seed:8L g)) in
  check_bool "ids do not reach the key" true (Wire.cache_key p1 = Wire.cache_key p2);
  check_bool "the seed does reach the key" false (Wire.cache_key p1 = Wire.cache_key p3)

(* The committed malformed-frame corpus: each file must come back as the
   expected protocol error — an error value, never an exception. *)
let wire_corpus_dir =
  if Sys.file_exists "corpus/wire" then "corpus/wire" else "test/corpus/wire"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_malformed_corpus () =
  let expect =
    [ ("truncated_prefix.bin", 1); ("truncated_payload.bin", 1); ("oversized.bin", 2);
      ("bad_version.bin", 3); ("bad_kind.bin", 4); ("malformed_body.bin", 5) ]
  in
  List.iter
    (fun (file, code) ->
      let bytes = read_file (Filename.concat wire_corpus_dir file) in
      let observed =
        match Wire.decode_stream bytes with
        | Error e -> Wire.error_code e
        | Ok _ -> Alcotest.failf "%s decoded cleanly" file
      in
      check_int file code observed)
    expect;
  match Wire.decode_stream (read_file (Filename.concat wire_corpus_dir "good_request.bin")) with
  | Ok [ Wire.Request _ ] -> ()
  | _ -> Alcotest.fail "good_request.bin must decode to one request"

(* ------------------------------------------------------------------ cache *)

let test_cache_lru () =
  let c = Serve_cache.create ~max_entries:2 () in
  Serve_cache.add c "a" "1";
  Serve_cache.add c "b" "2";
  Alcotest.(check (option string)) "a cached" (Some "1") (Serve_cache.find c "a");
  (* a was just touched, so inserting c evicts b *)
  Serve_cache.add c "c" "3";
  Alcotest.(check (option string)) "b evicted" None (Serve_cache.find c "b");
  Alcotest.(check (option string)) "a survives" (Some "1") (Serve_cache.find c "a");
  Alcotest.(check (option string)) "c cached" (Some "3") (Serve_cache.find c "c");
  let k = Serve_cache.counters c in
  check_int "entries" 2 k.Serve_cache.entries;
  check_int "evictions" 1 k.Serve_cache.evictions;
  check_int "hits" 3 k.Serve_cache.hits;
  check_int "misses" 1 k.Serve_cache.misses

let test_cache_byte_bound () =
  let c = Serve_cache.create ~max_bytes:10 () in
  Serve_cache.add c "a" (String.make 6 'x');
  Serve_cache.add c "b" (String.make 6 'y');
  let k = Serve_cache.counters c in
  check_int "stays under the byte bound" 6 k.Serve_cache.bytes;
  check_int "oldest entry evicted" 1 k.Serve_cache.evictions;
  (* replacing a value adjusts the byte account *)
  Serve_cache.add c "b" "z";
  check_int "replacement re-accounts bytes" 1 (Serve_cache.counters c).Serve_cache.bytes

(* --------------------------------------------------------------- dispatch *)

let test_dispatch_matches_direct () =
  let g = dag_of_seed 11 in
  let p = Helpers.platform 1e6 in
  match
    ( Serve_dispatch.compute (request ~algo:(Wire.Heuristic Heuristics.MemHEFT) ~platform:p g),
      Heuristics.run Heuristics.MemHEFT g p )
  with
  | Wire.Schedule b, Ok s ->
    let v = validate_ok g p s in
    check_float "makespan" v.Validator.makespan b.Wire.makespan;
    check_float "peak blue" v.Validator.peak_blue b.Wire.peak_blue;
    check_float "peak red" v.Validator.peak_red b.Wire.peak_red;
    check_bool "starts" true (b.Wire.starts = s.Schedule.starts);
    check_bool "procs" true (b.Wire.procs = s.Schedule.procs)
  | _ -> Alcotest.fail "dispatcher and direct run disagree on feasibility"

let test_dispatch_infeasible_and_exact () =
  let g = star ~size:5. 3 in
  (match Serve_dispatch.compute (request ~algo:(Wire.Heuristic Heuristics.MemHEFT) ~platform:(Helpers.platform 1.) g) with
  | Wire.Infeasible _ -> ()
  | _ -> Alcotest.fail "expected a structured infeasible response");
  match Serve_dispatch.compute (request ~algo:Wire.Exact ~platform:(Helpers.platform 100.) g) with
  | Wire.Schedule { proof = Wire.Exact_optimal { nodes; bound }; makespan; _ } ->
    check_bool "searched at least one node" true (nodes >= 1);
    check_bool "bound certifies the optimum" true (bound <= makespan +. 1e-9)
  | _ -> Alcotest.fail "expected a proven-optimal exact response"

(* ----------------------------------------------------------------- server *)

(* Run the daemon over a request script: a writer domain feeds the script
   into a pipe, the server runs here (so pool submissions stay on the
   calling domain), responses go to a temp file. *)
let run_server ?pool ?cache ?max_inflight script =
  let in_r, in_w = Unix.pipe () in
  let path = Filename.temp_file "serve_test" ".bin" in
  let out = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let writer =
    Domain.spawn (fun () ->
        let b = Bytes.unsafe_of_string script in
        let rec go off =
          if off < Bytes.length b then go (off + Unix.write in_w b off (Bytes.length b - off))
        in
        go 0;
        Unix.close in_w)
  in
  let counters = Server.serve ?pool ?cache ?max_inflight ~input:in_r ~output:out () in
  Domain.join writer;
  Unix.close in_r;
  Unix.close out;
  let bytes = read_file path in
  Sys.remove path;
  (bytes, counters)

let script_of_requests rs = String.concat "" (List.map req_frame rs)

let requests_of_seeds seeds =
  List.mapi
    (fun k seed ->
      let algo = List.nth algos (k mod 9) (* everything but exact: keep the burst cheap *) in
      request ~id:(Int64.of_int (k + 1)) ~algo (dag_of_seed ~size:10 seed))
    seeds

let test_serve_basic () =
  let g = dag_of_seed 5 in
  let bytes, c = run_server (script_of_requests [ request ~id:42L g ]) in
  (match Wire.decode_stream bytes with
  | Ok [ Wire.Response { rid; body = Wire.Schedule _ } ] -> check_bool "id echoed" true (rid = 42L)
  | _ -> Alcotest.fail "expected exactly one schedule response");
  check_int "served" 1 c.Server.served;
  check_int "requests" 1 c.Server.requests;
  check_int "computed" 1 c.Server.computed

let test_serve_cache_hit () =
  let g = dag_of_seed 6 in
  (* same request bytes under three different ids, then a stats probe *)
  let script =
    script_of_requests [ request ~id:1L g; request ~id:2L g; request ~id:3L g ]
    ^ Wire.frame (Wire.encode_message (Wire.Stats_request 4L))
  in
  let cache = Serve_cache.create () in
  let bytes, c = run_server ~cache script in
  check_int "computed once" 1 c.Server.computed;
  match Wire.decode_stream bytes with
  | Ok
      [ Wire.Response ({ rid = 1L; _ } as r1); Wire.Response ({ rid = 2L; _ } as r2);
        Wire.Response ({ rid = 3L; _ } as r3); Wire.Response { rid = 4L; body = Wire.Stats_reply s }
      ] ->
    check_bool "cached response bodies byte-identical" true
      (Wire.encode_body r1.Wire.body = Wire.encode_body r2.Wire.body
      && Wire.encode_body r2.Wire.body = Wire.encode_body r3.Wire.body);
    check_int "stats: requests" 3 s.Wire.requests;
    check_int "stats: hits" 2 s.Wire.cache_hits;
    check_int "stats: misses" 1 s.Wire.cache_misses;
    check_int "stats: computed" 1 s.Wire.computed
  | _ -> Alcotest.fail "expected three responses and a stats reply"

let test_serve_jobs_parity () =
  let seeds = [ 21; 22; 23; 24; 21; 25; 22; 26; 27; 28 ] in
  let script = script_of_requests (requests_of_seeds seeds) in
  let run jobs =
    Par.with_pool ~jobs (fun pool -> run_server ~pool ~cache:(Serve_cache.create ()) script)
  in
  let b1, c1 = run 1 and b2, c2 = run 2 and b8, c8 = run 8 in
  check_bool "jobs=1 = jobs=2" true (b1 = b2);
  check_bool "jobs=1 = jobs=8" true (b1 = b8);
  check_int "computed jobs=1" c1.Server.computed c2.Server.computed;
  check_int "computed jobs=8" c1.Server.computed c8.Server.computed

let test_serve_arrival_order () =
  (* the same requests in two arrival orders: each id's response bytes are
     identical; only the stream order follows arrival *)
  let rs = requests_of_seeds [ 31; 32; 33; 34; 35 ] in
  let by_id bytes =
    match Wire.decode_stream bytes with
    | Ok msgs ->
      List.map
        (function
          | Wire.Response r -> (r.Wire.rid, Wire.encode_body r.Wire.body)
          | _ -> Alcotest.fail "expected only responses")
        msgs
      |> List.sort compare
    | Error e -> Alcotest.failf "decode: %s" (Wire.error_to_string e)
  in
  Par.with_pool ~jobs:4 (fun pool ->
      let fwd, _ = run_server ~pool ~cache:(Serve_cache.create ()) (script_of_requests rs) in
      let rev, _ =
        run_server ~pool ~cache:(Serve_cache.create ()) (script_of_requests (List.rev rs))
      in
      check_bool "per-id responses independent of arrival order" true (by_id fwd = by_id rev);
      (match Wire.decode_stream fwd with
      | Ok msgs ->
        let ids = List.map (function Wire.Response r -> r.Wire.rid | _ -> 0L) msgs in
        check_bool "responses stream in request order" true
          (ids = List.map (fun r -> r.Wire.id) rs)
      | Error _ -> Alcotest.fail "undecodable response stream"))

let test_serve_warm_cache_determinism () =
  (* one server fed script++script: the second pass must reproduce the
     first byte-for-byte out of the warm cache *)
  let script = script_of_requests (requests_of_seeds [ 41; 42; 43; 44 ]) in
  Par.with_pool ~jobs:4 (fun pool ->
      let once, _ = run_server ~pool ~cache:(Serve_cache.create ()) script in
      let twice, c = run_server ~pool ~cache:(Serve_cache.create ()) (script ^ script) in
      check_bool "warm pass reproduces the cold pass" true (twice = once ^ once);
      check_int "second pass fully cached" 4 c.Server.computed)

let test_serve_backpressure_burst () =
  (* a one-flush burst far above max_inflight: all served, in id order, and
     the pending queue never grew past the cap *)
  let n = 100 in
  let rs = List.init n (fun k -> request ~id:(Int64.of_int k) (dag_of_seed ~size:6 (50 + (k mod 7)))) in
  Par.with_pool ~jobs:4 (fun pool ->
      let bytes, c =
        run_server ~pool ~cache:(Serve_cache.create ()) ~max_inflight:4 (script_of_requests rs)
      in
      check_int "all served" n c.Server.served;
      check_bool "pending bounded by max_inflight" true (c.Server.max_inflight <= 4);
      match Wire.decode_stream bytes with
      | Ok msgs ->
        let ids = List.map (function Wire.Response r -> r.Wire.rid | _ -> -1L) msgs in
        check_bool "responses in request order" true (ids = List.init n Int64.of_int)
      | Error e -> Alcotest.failf "decode: %s" (Wire.error_to_string e))

let test_serve_error_midstream () =
  (* a framing-intact protocol error (bad kind) between two good requests:
     answered in place, the daemon keeps serving *)
  let g = dag_of_seed 61 in
  let bad =
    let p = Wire.encode_message (Wire.Request (request ~id:2L g)) in
    let b = Bytes.of_string p in
    Bytes.set b 1 '\x70';
    Wire.frame (Bytes.unsafe_to_string b)
  in
  let script = req_frame (request ~id:1L g) ^ bad ^ req_frame (request ~id:3L g) in
  let bytes, c = run_server script in
  check_int "one protocol error" 1 c.Server.protocol_errors;
  match Wire.decode_stream bytes with
  | Ok
      [ Wire.Response { rid = 1L; body = Wire.Schedule _ };
        Wire.Response { rid = 2L; body = Wire.Failure { code; _ } };
        Wire.Response { rid = 3L; body = Wire.Schedule _ } ] ->
    check_int "bad-kind error code" 4 code
  | _ -> Alcotest.fail "expected schedule, error, schedule"

let test_serve_truncated_tail () =
  (* a stream ending mid-frame: pending work drains, the cut is answered,
     exit is clean *)
  let g = dag_of_seed 62 in
  let script = req_frame (request ~id:1L g) ^ "\x00\x00" in
  let bytes, c = run_server script in
  check_int "truncation answered" 1 c.Server.protocol_errors;
  match Wire.decode_stream bytes with
  | Ok
      [ Wire.Response { rid = 1L; body = Wire.Schedule _ };
        Wire.Response { rid = 0L; body = Wire.Failure { code = 1; _ } } ] -> ()
  | _ -> Alcotest.fail "expected a schedule response then a truncation error"

let () =
  Alcotest.run "serve"
    [ ( "wire",
        [ Alcotest.test_case "framing round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "oversized frames rejected" `Quick test_oversized_frame;
          request_fixpoint; response_fixpoint; decode_total;
          Alcotest.test_case "cache key quotients out the id" `Quick test_cache_key_quotient;
          Alcotest.test_case "malformed corpus decodes to errors" `Quick test_malformed_corpus ] );
      ( "cache",
        [ Alcotest.test_case "LRU eviction order" `Quick test_cache_lru;
          Alcotest.test_case "byte bound" `Quick test_cache_byte_bound ] );
      ( "dispatch",
        [ Alcotest.test_case "agrees with a direct run" `Quick test_dispatch_matches_direct;
          Alcotest.test_case "infeasible and exact proofs" `Quick test_dispatch_infeasible_and_exact
        ] );
      ( "server",
        [ Alcotest.test_case "one request, one response" `Quick test_serve_basic;
          Alcotest.test_case "cache hits are byte-identical" `Quick test_serve_cache_hit;
          Alcotest.test_case "byte parity across jobs 1/2/8" `Quick test_serve_jobs_parity;
          Alcotest.test_case "arrival-order independence" `Quick test_serve_arrival_order;
          Alcotest.test_case "warm-cache determinism" `Quick test_serve_warm_cache_determinism;
          Alcotest.test_case "backpressure burst" `Quick test_serve_backpressure_burst;
          Alcotest.test_case "protocol error mid-stream" `Quick test_serve_error_midstream;
          Alcotest.test_case "truncated tail drains" `Quick test_serve_truncated_tail ] ) ]
