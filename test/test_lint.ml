(* Tests for lib/lint: per-rule firing fixtures (one minimal bad snippet per
   rule, asserting the exact file:line:col), the path carve-outs, inline
   pragma suppression (including its single-rule scoping), the allowlist,
   the engine end-to-end on a planted-violation temp tree, and the typed
   interprocedural pass on an ocamlc-compiled cmt fixture tree (cross-module
   race, float/arrow poly-compare, effect propagation, cache cold/warm and
   --jobs byte-identity) — plus the repo self-clean gate that makes any new
   lint finding fail tier-1. *)

open Helpers

let lint ?rules ~path src = Lint_engine.lint_string ?rules ~path src

let rules_of fs =
  List.sort_uniq String.compare (List.map (fun f -> f.Lint_finding.rule) fs)

let check_one_finding name ~rule ~line ~col fs =
  match fs with
  | [ f ] ->
    check_string (name ^ ": rule") rule f.Lint_finding.rule;
    check_int (name ^ ": line") line f.Lint_finding.line;
    check_int (name ^ ": col") col f.Lint_finding.col
  | fs ->
    Alcotest.failf "%s: expected exactly one finding, got %d:\n%s" name
      (List.length fs)
      (String.concat "\n" (List.map Lint_finding.to_text fs))

(* One minimal violation per rule: (rule, path it fires in, source, line, col).
   The registry check below keeps this table in sync with Lint_rules.all. *)
let firing_fixtures =
  [ ("determinism", "lib/core/x.ml", "let x () = Random.int 3\n", 1, 12);
    ("float-discipline", "lib/core/x.ml", "let bad a = a = 1.0\n", 1, 15);
    ("domain-safety", "lib/core/x.ml", "let cache = Hashtbl.create 16\n", 1, 13);
    ("io-purity", "lib/core/x.ml", "let f () = Printf.printf \"hi\"\n", 1, 12);
    ( "order-stability",
      "lib/core/x.ml",
      "let f h = Hashtbl.fold (fun _ v acc -> v :: acc) h []\n",
      1,
      11 ) ]

let test_registry_covered () =
  check_int "one firing fixture per registered rule" (List.length Lint_rules.all)
    (List.length firing_fixtures);
  List.iter
    (fun (rule, _, _, _, _) ->
      check_bool (rule ^ " is a registered rule id") true (Option.is_some (Lint_rules.find rule)))
    firing_fixtures;
  check_bool "unknown rule id is rejected" true (Option.is_none (Lint_rules.find "no-such-rule"))

let test_rules_fire () =
  List.iter
    (fun (rule, path, src, line, col) ->
      check_one_finding rule ~rule ~line ~col (lint ~path src))
    firing_fixtures

(* Appending the pragma to the offending line silences that rule — and only
   that rule (scoping is checked separately below). *)
let test_rules_suppressed_same_line () =
  List.iter
    (fun (rule, path, src, _, _) ->
      let line = String.sub src 0 (String.length src - 1) in
      let src = Printf.sprintf "%s (* lint: allow %s -- fixture *)\n" line rule in
      check_int (rule ^ ": same-line pragma silences it") 0 (List.length (lint ~path src)))
    firing_fixtures

let test_rules_suppressed_previous_line () =
  List.iter
    (fun (rule, path, src, _, _) ->
      let src = Printf.sprintf "(* lint: allow %s -- fixture *)\n%s" rule src in
      check_int (rule ^ ": preceding-line pragma silences it") 0 (List.length (lint ~path src)))
    firing_fixtures

(* A pragma names ONE rule: allowing io-purity on a line that also calls
   Sys.time must still report the determinism finding. *)
let test_suppression_scoped_to_rule () =
  let src = "let f () = Printf.printf \"%f\" (Sys.time ()) (* lint: allow io-purity -- scoped *)\n" in
  let fs = lint ~path:"lib/core/x.ml" src in
  check_string "only the other rule survives" "determinism" (String.concat "," (rules_of fs));
  let src = "let f () = Printf.printf \"%f\" (Sys.time ()) (* lint: allow determinism -- scoped *)\n" in
  let fs = lint ~path:"lib/core/x.ml" src in
  check_string "swapped pragma, swapped survivor" "io-purity" (String.concat "," (rules_of fs))

let test_pragma_two_lines_only () =
  (* The pragma reaches its own line and the next one, not further. *)
  let src = "(* lint: allow order-stability -- near *)\n\nlet f h = Hashtbl.fold (fun _ v a -> v :: a) h []\n" in
  check_string "pragma two lines up does not reach" "order-stability"
    (String.concat "," (rules_of (lint ~path:"lib/core/x.ml" src)))

(* ------------------------------------------------- carve-outs / negatives --- *)

let test_path_carveouts () =
  let clean name path src = check_int name 0 (List.length (lint ~path src)) in
  clean "lib/par may read Domain.self" "lib/par/pool.ml" "let d () = Domain.self ()\n";
  clean "the seeded Rng implements randomness" "lib/util/rng.ml" "let r () = Random.int 3\n";
  clean "Fp owns raw float comparison" "lib/util/fp.ml" "let eq a b = a = (b : float)\n";
  clean "bin/ may print" "bin/cli.ml" "let f () = Printf.printf \"hi\"\n";
  clean "the Csv writer may print" "lib/util/csv.ml" "let f () = print_string \"x\"\n";
  (* domain-safety is a lib/ rule: a test fixture's global Hashtbl is fine *)
  clean "test/ may hold globals" "test/t.ml" "let cache = Hashtbl.create 16\n";
  clean "lib/dag owns unchecked CSR indexing" "lib/dag/dag.ml"
    "let g a i = Array.unsafe_get a i\n"

(* Raw unchecked indexing is the order-stability rule's second head: outside
   the CSR owner module it turns an off-by-one into a silent wrong value. *)
let test_unsafe_array_rule () =
  check_one_finding "unsafe_get in lib" ~rule:"order-stability" ~line:1 ~col:13
    (lint ~path:"lib/core/x.ml" "let g a i = Array.unsafe_get a i\n");
  check_one_finding "unsafe_set in bench" ~rule:"order-stability" ~line:1 ~col:15
    (lint ~path:"bench/main.ml" "let s a i v = Array.unsafe_set a i v\n")

let test_negatives () =
  let clean name src = check_int name 0 (List.length (lint ~path:"lib/core/x.ml" src)) in
  clean "Float.equal is the sanctioned exact form" "let ok a b = Float.equal (a *. 2.) b\n";
  clean "polymorphic = on ints is fine" "let ok a = a = 1\n";
  clean "function-local ref is not shared state" "let f () = let r = ref 0 in incr r; !r\n";
  clean "Atomic.make is the sanctioned global" "let n = Atomic.make 0\n";
  clean "Hashtbl lookups do not depend on bucket order" "let g h k = Hashtbl.find_opt h k\n";
  clean "Printf.sprintf returns data" "let s x = Printf.sprintf \"%d\" x\n"

(* Division of labour, pinned on purpose: the float-discipline rule is
   syntactic (untyped parsetree), so [compare a.eft b.eft] on record fields
   of type [float] is invisible to it — the field's type lives in another
   file.  The typed poly-compare rule closes exactly this gap on the
   Typedtree (see test_typed_planted_tree: Pt.t's float fields are declared
   in another module and still flagged).  This fixture keeps the syntactic
   rule honest about its reach so the two passes' responsibilities stay
   visible. *)
let test_float_field_compare_gap () =
  let src = "type n = { eft : float }\nlet cmp a b = compare a.eft b.eft\n" in
  check_int "record-float-field compare is NOT flagged (documented gap)" 0
    (List.length (lint ~path:"lib/core/x.ml" src));
  (* the same comparison with a visible float literal IS flagged: the rule
     keys on syntactic evidence of float-ness, which fields do not carry *)
  check_int "literal-float compare is flagged" 1
    (List.length (lint ~path:"lib/core/x.ml" "let bad a = compare a 1.0\n"))

let test_mutex_rule () =
  let fs = lint ~path:"lib/core/x.ml" "let f m w = Mutex.lock m; w ()\n" in
  check_one_finding "bare Mutex.lock" ~rule:"domain-safety" ~line:1 ~col:13 fs;
  let src = "let g m w = Mutex.lock m; Fun.protect ~finally:(fun () -> Mutex.unlock m) w\n" in
  check_int "lock with an unlock path is fine" 0 (List.length (lint ~path:"lib/core/x.ml" src))

let test_rule_selection () =
  (* --rule narrows the pass: with only io-purity selected, the Sys.time
     call on the same line is invisible. *)
  let rules = Option.to_list (Lint_rules.find "io-purity") in
  let src = "let f () = Printf.printf \"%f\" (Sys.time ())\n" in
  check_string "only the selected rule runs" "io-purity"
    (String.concat "," (rules_of (lint ~rules ~path:"lib/core/x.ml" src)))

let test_parse_failure_is_a_finding () =
  match lint ~path:"lib/core/x.ml" "let = =\n" with
  | [ f ] -> check_string "syntax errors surface as findings" "parse" f.Lint_finding.rule
  | fs -> Alcotest.failf "expected one parse finding, got %d" (List.length fs)

(* ------------------------------------------------------------- renderers --- *)

let test_renderers () =
  let f =
    Lint_finding.v ~rule:"io-purity" ~file:"lib/a.ml" ~line:3 ~col:7 ~hint:"return data"
      "console IO (\"quoted\")"
  in
  check_string "text line" "lib/a.ml:3:7: [io-purity] console IO (\"quoted\") (fix: return data)"
    (Lint_finding.to_text f);
  check_string "json escaping" "console IO (\\\"quoted\\\")"
    (Lint_finding.json_escape "console IO (\"quoted\")");
  check_string "clean text report" "lint: clean\n" (Lint_engine.render_text []);
  check_string "empty json report" "{\"findings\":[],\"count\":0}\n" (Lint_engine.render_json [])

(* ------------------------------------------------------------- allowlist --- *)

let test_allowlist_parse () =
  let src = "# grandfathered\n\ndeterminism bench/main.ml\nio-purity lib/a.ml # reason\n" in
  (match Lint_allowlist.parse_string src with
  | Error e -> Alcotest.failf "unexpected parse error: %s" e
  | Ok entries ->
    check_int "two entries" 2 (List.length entries);
    let e = List.nth entries 1 in
    check_string "rule" "io-purity" e.Lint_allowlist.rule;
    check_string "file" "lib/a.ml" e.Lint_allowlist.file);
  match Lint_allowlist.parse_string "# ok\nmalformed-no-path\n" with
  | Error e ->
    check_bool "error names the line" true
      (String.starts_with ~prefix:"line 2" e)
  | Ok _ -> Alcotest.fail "malformed entry must be rejected"

let test_allowlist_filter_scoped () =
  let f ~rule ~file = Lint_finding.v ~rule ~file ~line:1 ~col:1 ~hint:"h" "m" in
  let fs =
    [ f ~rule:"io-purity" ~file:"lib/a.ml";
      f ~rule:"determinism" ~file:"lib/a.ml";
      f ~rule:"io-purity" ~file:"lib/b.ml" ]
  in
  let entries = [ { Lint_allowlist.rule = "io-purity"; file = "lib/a.ml" } ] in
  let kept = Lint_allowlist.filter entries fs in
  check_int "exactly the (rule, file) pair is dropped" 2 (List.length kept);
  check_bool "same file, other rule survives" true
    (List.exists (fun f -> f.Lint_finding.rule = "determinism") kept);
  check_bool "same rule, other file survives" true
    (List.exists (fun f -> f.Lint_finding.file = "lib/b.ml") kept)

(* --------------------------------------------- engine on a planted tree --- *)

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let run_exn ?jobs root =
  match Lint_engine.run ?jobs ~root () with
  | Ok fs -> fs
  | Error e -> Alcotest.failf "engine error: %s" e

let test_engine_planted_tree () =
  let root = Filename.temp_dir "memsched_lint" "" in
  Sys.mkdir (Filename.concat root "lib") 0o755;
  let planted = Filename.concat root "lib/planted.ml" in
  let more = Filename.concat root "lib/z_more.ml" in
  write_file planted "let now () = Unix.gettimeofday ()\nlet say () = Printf.printf \"x\"\n";
  write_file more "let h = Hashtbl.create 8\nlet f tbl = Hashtbl.fold (fun k _ a -> k :: a) tbl []\n";
  write_file (Filename.concat root "lint.allowlist") "io-purity lib/planted.ml\n";
  check_string "discovery is sorted" "lib/planted.ml,lib/z_more.ml"
    (String.concat "," (Lint_engine.discover ~root));
  let fs = run_exn root in
  (* allowlist swallowed the planted io-purity finding, nothing else *)
  check_string "sorted survivor set"
    "lib/planted.ml:1:determinism,lib/z_more.ml:1:domain-safety,lib/z_more.ml:2:order-stability"
    (String.concat ","
       (List.map
          (fun f -> Printf.sprintf "%s:%d:%s" f.Lint_finding.file f.Lint_finding.line f.Lint_finding.rule)
          fs));
  (* satellite contract: the JSON report is byte-identical across --jobs *)
  check_string "jobs=1 and jobs=2 render identical bytes"
    (Lint_engine.render_json (run_exn ~jobs:1 root))
    (Lint_engine.render_json (run_exn ~jobs:2 root));
  (* mutation 1: a pragma for the WRONG rule changes nothing *)
  write_file more
    "let h = Hashtbl.create 8 (* lint: allow determinism -- wrong rule *)\nlet f tbl = Hashtbl.fold (fun k _ a -> k :: a) tbl []\n";
  check_int "pragma for another rule does not suppress" 3 (List.length (run_exn root));
  (* mutation 2: the right rule id silences exactly that finding *)
  write_file more
    "let h = Hashtbl.create 8 (* lint: allow domain-safety -- planted *)\nlet f tbl = Hashtbl.fold (fun k _ a -> k :: a) tbl []\n";
  let fs = run_exn root in
  check_string "only the annotated finding disappeared" "lib/planted.ml:determinism,lib/z_more.ml:order-stability"
    (String.concat ","
       (List.map (fun f -> Printf.sprintf "%s:%s" f.Lint_finding.file f.Lint_finding.rule) fs));
  (* mutation 3: an allowlist entry is (rule, file)-scoped too *)
  write_file (Filename.concat root "lint.allowlist")
    "io-purity lib/planted.ml\ndeterminism lib/z_more.ml # wrong file/rule pairing\n";
  check_int "allowlist entry for another (rule, file) pair is inert" 2
    (List.length (run_exn root));
  write_file (Filename.concat root "lint.allowlist")
    "io-purity lib/planted.ml\ndeterminism lib/planted.ml\norder-stability lib/z_more.ml\n";
  check_int "covering every finding yields a clean run" 0 (List.length (run_exn root));
  (* malformed allowlist is an engine error, not a silent pass *)
  write_file (Filename.concat root "lint.allowlist") "oops\n";
  (match Lint_engine.run ~root () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed allowlist must be an error");
  List.iter Sys.remove
    [ planted; more; Filename.concat root "lint.allowlist" ];
  Sys.rmdir (Filename.concat root "lib");
  Sys.rmdir root

(* ----------------------------------------------- typed interprocedural --- *)

(* Fixture repos for the typed pass: a source tree mirrored under
   _build/default and compiled with `ocamlc -bin-annot -c` from there, so
   every cmt carries a repo-relative [cmt_sourcefile] and the source digest
   of the mirrored file — exactly the artifact layout [Lint_cmt.discover]
   expects.  The Par stub gives the fixtures real pool entry points without
   linking lib/par. *)

let typed_sources =
  [ ( "lib/par/par.ml",
      "type t = unit\n\
       let parallel_map ?(chunk = 1) (_ : t) ~f xs =\n\
      \  ignore chunk;\n\
      \  List.map f xs\n\n\
       let submit (_ : t) f = f ()\n" );
    (* cross-module race target: a bare ref behind a helper *)
    ("lib/sim/state.ml", "let total = ref 0\nlet bump x = total := !total + x\n");
    (* cross-module float carrier for poly-compare *)
    ("lib/sim/pt.ml", "type t = { x : float; y : float }\nlet origin = { x = 0.; y = 0. }\n");
    (* non-core nondeterminism source for effect-purity *)
    ("lib/util/helper.ml", "let jitter () = Random.float 1.0\n");
    (* the planted cross-module race: the closure reaches State.total via
       State.bump; the second site is pragma-sanctioned *)
    ( "lib/core/driver.ml",
      "let run pool xs = Par.parallel_map pool ~f:(fun x -> State.bump x) xs\n\
       (* lint: allow domain-race -- audited fixture *)\n\
       let run_ok pool xs = Par.parallel_map pool ~f:(fun x -> State.bump x) xs\n" );
    (* the planted float compare: Pt.t's float fields live in another file *)
    ("lib/core/use.ml", "let same (a : Pt.t) b = compare a b = 0\n");
    (* effects entering the core, one sanctioned by pragma *)
    ( "lib/core/sched.ml",
      "let plan xs = List.map (fun x -> x +. Helper.jitter ()) xs\n\
       (* lint: allow effect-purity -- audited fixture *)\n\
       let plan_ok xs = List.map (fun x -> x +. Helper.jitter ()) xs\n" );
    (* carve-out pins: test/ is exempt from the float arm only *)
    ("test/t_float.ml", "let eqf (a : float) b = compare a b = 0\n");
    ("test/t_arrow.ml", "let bad (f : int -> int) g = compare f g\n") ]

let rec ensure_dir d =
  if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    ensure_dir (Filename.dirname d);
    Sys.mkdir d 0o755
  end

(* Write + compile the fixture tree; returns the repo root. *)
let typed_fixture_root () =
  let root = Filename.temp_dir "memsched_typed" "" in
  let build = Filename.concat root "_build/default" in
  List.iter
    (fun (rel, src) ->
      List.iter
        (fun base ->
          let path = Filename.concat base rel in
          ensure_dir (Filename.dirname path);
          write_file path src)
        [ root; build ])
    typed_sources;
  let incs =
    List.sort_uniq String.compare (List.map (fun (rel, _) -> Filename.dirname rel) typed_sources)
    |> List.map (fun d -> "-I " ^ Filename.quote d)
    |> String.concat " "
  in
  List.iter
    (fun (rel, _) ->
      let cmd =
        Printf.sprintf "cd %s && ocamlc -bin-annot -c %s %s > /dev/null 2>&1"
          (Filename.quote build) incs (Filename.quote rel)
      in
      if Sys.command cmd <> 0 then Alcotest.failf "fixture compile failed: %s" rel)
    typed_sources;
  root

let run_typed_exn ?jobs ?cache_file root =
  match Lint_engine.run_typed ?jobs ?cache_file ~root () with
  | Ok r -> r
  | Error e -> Alcotest.failf "typed engine error: %s" e

let finding_keys fs =
  String.concat ","
    (List.map
       (fun f -> Printf.sprintf "%s:%d:%s" f.Lint_finding.file f.Lint_finding.line f.Lint_finding.rule)
       fs)

let test_typed_planted_tree () =
  let root = typed_fixture_root () in
  let cache_file = Filename.concat root "lint_cache.bin" in
  let fs, _pg, cold = run_typed_exn ~cache_file root in
  (* One finding per planted violation — the pragma'd twins and the test/
     float fixture stay silent; t_arrow pins the arrow arm applying under
     test/ too. *)
  check_string "planted typed findings"
    "lib/core/driver.ml:1:domain-race,lib/core/sched.ml:1:effect-purity,lib/core/use.ml:1:poly-compare,test/t_arrow.ml:1:poly-compare"
    (finding_keys fs);
  let race = List.find (fun f -> f.Lint_finding.rule = "domain-race") fs in
  let contains hay needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "race names the cross-module global" true
    (contains race.Lint_finding.message "State.total");
  check_bool "race reports the witness chain" true
    (contains race.Lint_finding.message "State.bump");
  let poly = List.find (fun f -> f.Lint_finding.file = "lib/core/use.ml") fs in
  check_bool "poly names the carrier type" true (contains poly.Lint_finding.message "Pt.t");
  (* cold pass extracted every artifact *)
  check_int "cold: nothing from cache" 0 cold.Lint_engine.tp_from_cache;
  check_bool "cold: extracted the tree" true (cold.Lint_engine.tp_extracted > 0);
  (* warm pass: every module served from the content-addressed cache,
     identical output bytes *)
  let fs_warm, _, warm = run_typed_exn ~cache_file root in
  check_int "warm: zero reparses" 0 warm.Lint_engine.tp_extracted;
  check_int "warm: fully cache-served" cold.Lint_engine.tp_extracted warm.Lint_engine.tp_from_cache;
  check_string "warm output is byte-identical" (Lint_engine.render_json fs)
    (Lint_engine.render_json fs_warm);
  (* --jobs parity on the typed pass *)
  List.iter
    (fun jobs ->
      let fs_j, _, _ = run_typed_exn ~jobs ~cache_file root in
      check_string
        (Printf.sprintf "jobs=%d renders identical bytes" jobs)
        (Lint_engine.render_json fs) (Lint_engine.render_json fs_j))
    [ 1; 2; 8 ];
  (* allowlist entries suppress typed rules with (rule, file) scoping *)
  write_file (Filename.concat root "lint.allowlist") "domain-race lib/core/driver.ml\n";
  let fs_allow, _, _ = run_typed_exn ~cache_file root in
  check_string "allowlisted race disappears, rest survive"
    "lib/core/sched.ml:1:effect-purity,lib/core/use.ml:1:poly-compare,test/t_arrow.ml:1:poly-compare"
    (finding_keys fs_allow);
  Sys.remove (Filename.concat root "lint.allowlist");
  (* staleness: editing a source without rebuilding its cmt drops the module
     (and its findings) instead of reporting against stale bytes *)
  write_file (Filename.concat root "lib/core/use.ml") "let same (a : Pt.t) b = a == b\n";
  let fs_stale, _, stale = run_typed_exn ~cache_file root in
  check_int "edited-but-not-rebuilt module counts as stale" 1 stale.Lint_engine.tp_stale;
  check_string "stale module's finding is gone"
    "lib/core/driver.ml:1:domain-race,lib/core/sched.ml:1:effect-purity,test/t_arrow.ml:1:poly-compare"
    (finding_keys fs_stale)

let test_typed_effects_json () =
  let root = typed_fixture_root () in
  let _, pg, _ = run_typed_exn ~cache_file:(Filename.concat root "lint_cache.bin") root in
  let json = Lint_typed_rules.effects_json pg in
  let contains needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length json && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "summary lists the nondet source" true (contains "\"fn\":\"Helper.jitter\"");
  check_bool "kind is named" true (contains "\"nondet\"");
  check_bool "witness chain reaches the culprit" true (contains "Random.float");
  check_bool "the core caller is effectful too" true (contains "\"fn\":\"Driver.run\"" || contains "\"fn\":\"Sched.plan\"");
  check_bool "counts are emitted" true (contains "\"effectful\":" && contains "\"total\":")

let test_typed_rule_registry () =
  check_string "typed rule ids" "domain-race,effect-purity,poly-compare"
    (String.concat "," Lint_typed_rules.names);
  List.iter
    (fun name ->
      check_bool (name ^ " is documented") true (List.mem_assoc name Lint_typed_rules.docs))
    Lint_typed_rules.names

(* ------------------------------------------------------ repo self-clean --- *)

(* Same walk the lint fuzz-oracle uses: from dune's _build/default/test cwd
   this resolves to the checkout root.  Running the full linter here makes
   any new violation fail `dune runtest` — the tier-1 gate of the issue. *)
let repo_root () =
  let rec up dir n =
    if n > 8 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lint.allowlist")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n + 1)
  in
  up (Sys.getcwd ()) 0

let test_repo_is_lint_clean () =
  match repo_root () with
  | None -> Alcotest.fail "repo root (dune-project + lint.allowlist) not found from cwd"
  | Some root -> (
    match Lint_engine.run ~root () with
    | Error e -> Alcotest.failf "lint engine error: %s" e
    | Ok [] -> ()
    | Ok fs ->
      Alcotest.failf "the tree must stay lint-clean; fix or annotate:\n%s"
        (Lint_engine.render_text fs))

let () =
  Alcotest.run "lint"
    [ ( "rules",
        [ Alcotest.test_case "registry covered" `Quick test_registry_covered;
          Alcotest.test_case "each rule fires at file:line:col" `Quick test_rules_fire;
          Alcotest.test_case "path carve-outs" `Quick test_path_carveouts;
          Alcotest.test_case "unsafe CSR indexing" `Quick test_unsafe_array_rule;
          Alcotest.test_case "negatives stay clean" `Quick test_negatives;
          Alcotest.test_case "record-float-field compare gap" `Quick test_float_field_compare_gap;
          Alcotest.test_case "mutex pairing" `Quick test_mutex_rule;
          Alcotest.test_case "--rule selection" `Quick test_rule_selection;
          Alcotest.test_case "parse failure is a finding" `Quick test_parse_failure_is_a_finding ]
      );
      ( "suppression",
        [ Alcotest.test_case "same-line pragma" `Quick test_rules_suppressed_same_line;
          Alcotest.test_case "preceding-line pragma" `Quick test_rules_suppressed_previous_line;
          Alcotest.test_case "pragma scoped to one rule" `Quick test_suppression_scoped_to_rule;
          Alcotest.test_case "pragma reach is two lines" `Quick test_pragma_two_lines_only ] );
      ("render", [ Alcotest.test_case "text and json forms" `Quick test_renderers ]);
      ( "allowlist",
        [ Alcotest.test_case "parse" `Quick test_allowlist_parse;
          Alcotest.test_case "filter is (rule, file)-scoped" `Quick test_allowlist_filter_scoped ]
      );
      ( "engine",
        [ Alcotest.test_case "planted tree end to end" `Quick test_engine_planted_tree ] );
      ( "typed",
        [ Alcotest.test_case "typed rule registry" `Quick test_typed_rule_registry;
          Alcotest.test_case "planted cmt tree end to end" `Quick test_typed_planted_tree;
          Alcotest.test_case "effects json summary" `Quick test_typed_effects_json ] );
      ("self", [ Alcotest.test_case "repo is lint-clean" `Quick test_repo_is_lint_clean ]) ]
