(* Tests for the schedule representation, the discrete-event memory trace and
   the validity oracle, anchored on the paper's worked example (Figures 2-4:
   schedule s1 and the memory usages computed in SS 3.2). *)

open Helpers

let dex = Toy.dex ()
let plat ~mb ~mr = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:mb ~m_red:mr

(* Schedule s1 of Figure 3: T1, T3, T4 on the red processor, T2 on the blue
   one; transfers (T1,T2) at time 1 and (T2,T4) at time 4. *)
let s1 () =
  let s = Schedule.create dex in
  s.Schedule.starts.(0) <- 0.;
  s.Schedule.starts.(1) <- 2.;
  s.Schedule.starts.(2) <- 1.;
  s.Schedule.starts.(3) <- 5.;
  s.Schedule.procs.(0) <- 1;
  s.Schedule.procs.(1) <- 0;
  s.Schedule.procs.(2) <- 1;
  s.Schedule.procs.(3) <- 1;
  (match Dag.find_edge dex ~src:0 ~dst:1 with
  | Some e -> s.Schedule.comm_starts.(e.Dag.eid) <- Some 1.
  | None -> assert false);
  (match Dag.find_edge dex ~src:1 ~dst:3 with
  | Some e -> s.Schedule.comm_starts.(e.Dag.eid) <- Some 4.
  | None -> assert false);
  s

(* ----------------------------------------------------------- schedule --- *)

let test_memory_of () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  check_bool "T1 red" true (Schedule.memory_of p s 0 = Platform.Red);
  check_bool "T2 blue" true (Schedule.memory_of p s 1 = Platform.Blue)

let test_durations () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  check_float "T1 red duration" 1. (Schedule.duration dex p s 0);
  check_float "T3 red duration" 3. (Schedule.duration dex p s 2);
  check_float "T1 finish" 1. (Schedule.finish dex p s 0);
  check_float "makespan" 6. (Schedule.makespan dex p s)

let test_cut_edges () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  let e01 = Option.get (Dag.find_edge dex ~src:0 ~dst:1) in
  let e02 = Option.get (Dag.find_edge dex ~src:0 ~dst:2) in
  check_bool "T1->T2 cut" true (Schedule.is_cut p s e01);
  check_bool "T1->T3 same memory" false (Schedule.is_cut p s e02);
  check_float "cut comm duration" 1. (Schedule.comm_duration p s e01);
  check_float "same-mem comm duration" 0. (Schedule.comm_duration p s e02);
  check_float "cut comm finish" 2. (Schedule.comm_finish dex p s e01);
  check_float "same-mem available at producer finish" 1. (Schedule.comm_finish dex p s e02)

let test_tasks_of_proc () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  Alcotest.(check (list int)) "red proc order" [ 0; 2; 3 ] (Schedule.tasks_of_proc dex p s 1);
  Alcotest.(check (list int)) "blue proc" [ 1 ] (Schedule.tasks_of_proc dex p s 0)

(* ------------------------------------------------------------- events --- *)

let test_memory_usage_paper_values () =
  (* SS 3.2: RedMemUsed(T1)=3, BlueMemUsed(T2)=2, RedMemUsed(T3)=5,
     RedMemUsed(T4)=3. *)
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  check_float "T1" 3. (Events.usage_at_task_start dex p s 0);
  check_float "T2" 2. (Events.usage_at_task_start dex p s 1);
  check_float "T3" 5. (Events.usage_at_task_start dex p s 2);
  check_float "T4" 3. (Events.usage_at_task_start dex p s 3)

let test_memory_peaks_paper () =
  (* M^s1_blue = 2 and M^s1_red = 5. *)
  let p = plat ~mb:5. ~mr:5. in
  let pb, pr = Events.peaks dex p (s1 ()) in
  check_float "blue peak" 2. pb;
  check_float "red peak" 5. pr

let test_trace_shape () =
  let p = plat ~mb:5. ~mr:5. in
  let trace = Events.memory_trace dex p (s1 ()) in
  let times = trace.Events.times in
  check_float "starts at 0" 0. times.(0);
  let sorted = ref true in
  for k = 0 to Array.length times - 2 do
    if times.(k) >= times.(k + 1) then sorted := false
  done;
  check_bool "strictly increasing" true !sorted;
  Array.iter (fun u -> check_bool "non-negative blue" true (u >= -1e-9)) trace.Events.blue;
  Array.iter (fun u -> check_bool "non-negative red" true (u >= -1e-9)) trace.Events.red;
  check_float "all memory released at the end" 0.
    (trace.Events.blue.(Array.length times - 1) +. trace.Events.red.(Array.length times - 1))

let test_usage_at_interpolation () =
  let p = plat ~mb:5. ~mr:5. in
  let trace = Events.memory_trace dex p (s1 ()) in
  (* Red holds F12+F13 = 3 during (0,1). *)
  check_float "mid-step" 3. (Events.usage_at trace Platform.Red 0.5);
  (* During the transfer (T2,T4) on [4,5) the file is in both memories. *)
  check_float "double residency red" 3. (Events.usage_at trace Platform.Red 4.5)

(* ---------------------------------------------------------- validator --- *)

let test_validator_accepts_s1 () =
  let p = plat ~mb:5. ~mr:5. in
  let r = validate_ok dex p (s1 ()) in
  check_float "makespan" 6. r.Validator.makespan;
  check_float "peak blue" 2. r.Validator.peak_blue;
  check_float "peak red" 5. r.Validator.peak_red

let test_validator_rejects_memory () =
  let p = plat ~mb:5. ~mr:4. in
  match Validator.validate dex p (s1 ()) with
  | Ok _ -> Alcotest.fail "should exceed red memory"
  | Error errs ->
    check_bool "mentions red memory" true
      (List.exists (fun e -> String.length e >= 3 && String.sub e 0 3 = "red") errs)

let test_validator_rejects_overlap () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  s.Schedule.starts.(2) <- 0.5 (* T3 now overlaps T1 on the red processor *);
  check_bool "overlap detected" true (Result.is_error (Validator.validate dex p s))

let test_validator_rejects_missing_comm () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  let e = Option.get (Dag.find_edge dex ~src:0 ~dst:1) in
  s.Schedule.comm_starts.(e.Dag.eid) <- None;
  check_bool "missing transfer" true (Result.is_error (Validator.validate dex p s))

let test_validator_rejects_spurious_comm () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  let e = Option.get (Dag.find_edge dex ~src:0 ~dst:2) in
  s.Schedule.comm_starts.(e.Dag.eid) <- Some 1. (* same-memory edge *);
  check_bool "spurious transfer" true (Result.is_error (Validator.validate dex p s))

let test_validator_rejects_late_comm () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  let e = Option.get (Dag.find_edge dex ~src:0 ~dst:1) in
  s.Schedule.comm_starts.(e.Dag.eid) <- Some 1.5 (* ends after T2 starts at 2 *);
  check_bool "late transfer" true (Result.is_error (Validator.validate dex p s))

let test_validator_rejects_early_comm () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  let e = Option.get (Dag.find_edge dex ~src:0 ~dst:1) in
  s.Schedule.comm_starts.(e.Dag.eid) <- Some 0.5 (* before T1 finishes at 1 *);
  check_bool "early transfer" true (Result.is_error (Validator.validate dex p s))

let test_validator_rejects_precedence () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  s.Schedule.starts.(3) <- 2. (* T4 before its same-memory parent T3 ends at 4 *);
  check_bool "precedence violated" true (Result.is_error (Validator.validate dex p s))

let test_validator_rejects_bad_proc () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  s.Schedule.procs.(0) <- 9;
  check_bool "processor range" true (Result.is_error (Validator.validate dex p s))

let test_validator_rejects_negative_start () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  s.Schedule.starts.(0) <- -1.;
  check_bool "negative start" true (Result.is_error (Validator.validate dex p s))

let test_validator_zero_duration_share_instant () =
  (* A zero-duration task may legally share its start instant with a longer
     task on the same processor (broadcast relays do this constantly). *)
  let g = build_dag ~tasks:[ ("a", 0., 0.); ("c", 2., 2.) ] ~edges:[] in
  let p = plat ~mb:5. ~mr:5. in
  let s = Schedule.create g in
  (* both on blue proc 0, both starting at 0; relay has zero duration *)
  ignore (validate_ok g p s);
  check_float "makespan from long task" 2. (Schedule.makespan g p s)

let test_validate_exn () =
  let p = plat ~mb:5. ~mr:4. in
  Alcotest.check_raises "raises on invalid"
    (Failure "red memory: usage 5 exceeds capacity 4 at time 1") (fun () ->
      ignore (Validator.validate_exn dex p (s1 ())))

(* -------------------------------------------------------------- gantt --- *)

let contains sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ----------------------------------------------------------- mutation --- *)

(* Mutation testing of the oracle itself: take a known-valid MemHEFT
   schedule, apply one corruption per defect class, and demand rejection
   with the matching message — proving the validator can actually fail, not
   just that it accepts everything it is shown. *)

let mutation_fixture () =
  let g = dag_of_seed ~size:14 3 in
  let unbounded = platform infinity in
  let _, (pb, pr) = Heuristics.heft_measured g unbounded in
  let p = platform (max pb pr) in
  match Heuristics.memheft g p with
  | Error _ -> Alcotest.fail "fixture must be feasible at HEFT's measured peak"
  | Ok s ->
    ignore (validate_ok g p s);
    (g, p, s)

let copy_sched (s : Schedule.t) =
  {
    Schedule.starts = Array.copy s.Schedule.starts;
    procs = Array.copy s.Schedule.procs;
    comm_starts = Array.copy s.Schedule.comm_starts;
  }

let expect_rejection name msg g p s =
  match Validator.validate g p s with
  | Ok _ -> Alcotest.failf "%s: corrupted schedule accepted" name
  | Error errs ->
    if not (List.exists (contains msg) errs) then
      Alcotest.failf "%s: no error matching %S in:\n%s" name msg (String.concat "\n" errs)

let find_edge_where g p s want_cut =
  match
    List.find_opt (fun e -> Schedule.is_cut p s e = want_cut) (Array.to_list (Dag.edges g))
  with
  | Some e -> e
  | None -> Alcotest.failf "fixture has no %s edge" (if want_cut then "cut" else "same-memory")

let test_mutation_overlap () =
  let g, p, s = mutation_fixture () in
  let s' = copy_sched s in
  (* Move some task onto another task's processor at the same start. *)
  let victim, target =
    let pairs = ref None in
    for i = 0 to Dag.n_tasks g - 1 do
      for j = 0 to Dag.n_tasks g - 1 do
        if
          !pairs = None && i <> j
          && Schedule.duration g p s i > 0.
          && Schedule.duration g p s j > 0.
          && Schedule.memory_of p s i = Schedule.memory_of p s j
        then pairs := Some (i, j)
      done
    done;
    Option.get !pairs
  in
  s'.Schedule.procs.(victim) <- s'.Schedule.procs.(target);
  s'.Schedule.starts.(victim) <- s'.Schedule.starts.(target);
  expect_rejection "overlap" "overlap" g p s'

let test_mutation_dropped_transfer () =
  let g, p, s = mutation_fixture () in
  let e = find_edge_where g p s true in
  let s' = copy_sched s in
  s'.Schedule.comm_starts.(e.Dag.eid) <- None;
  expect_rejection "dropped transfer" "cut edge without a transfer" g p s'

let test_mutation_spurious_transfer () =
  let g, p, s = mutation_fixture () in
  let e = find_edge_where g p s false in
  let s' = copy_sched s in
  s'.Schedule.comm_starts.(e.Dag.eid) <- Some s'.Schedule.starts.(e.Dag.dst);
  expect_rejection "spurious transfer" "spurious transfer" g p s'

let test_mutation_flow_violation () =
  let g, p, s = mutation_fixture () in
  (* Start a consumer strictly before one of its producers finishes. *)
  let e =
    match
      List.find_opt
        (fun (e : Dag.edge) -> Schedule.duration g p s e.Dag.src > 0.)
        (Array.to_list (Dag.edges g))
    with
    | Some e -> e
    | None -> Alcotest.fail "fixture has no positive-duration producer"
  in
  let s' = copy_sched s in
  s'.Schedule.starts.(e.Dag.dst) <- s'.Schedule.starts.(e.Dag.src);
  expect_rejection "flow violation" "before producer finishes" g p s'

let test_mutation_memory_overrun () =
  let g, p, s = mutation_fixture () in
  let r = validate_ok g p s in
  let squeeze = 0.5 *. max r.Validator.peak_blue r.Validator.peak_red in
  let tight = Platform.with_bounds p ~m_blue:squeeze ~m_red:squeeze in
  expect_rejection "memory overrun" "exceeds capacity" g tight s

let test_mutation_out_of_range () =
  let g, p, s = mutation_fixture () in
  let s' = copy_sched s in
  s'.Schedule.procs.(0) <- Platform.n_procs p;
  expect_rejection "out of range" "out of range" g p s';
  let s'' = copy_sched s in
  s''.Schedule.starts.(0) <- -1.;
  expect_rejection "negative start" "negative start" g p s''

let test_gantt_render () =
  let p = plat ~mb:5. ~mr:5. in
  let out = Gantt.render ~width:40 dex p (s1 ()) in
  check_bool "shows makespan" true (contains "makespan = 6" out);
  check_bool "shows lanes" true (contains "P0" out && contains "P1" out);
  check_bool "shows memory peaks" true (contains "peak=5" out)

let test_gantt_memory_profile () =
  let p = plat ~mb:5. ~mr:5. in
  let out = Gantt.render_memory_profile ~width:40 dex p (s1 ()) in
  check_bool "two lanes" true (contains "blue" out && contains "red" out)

(* -------------------------------------------------------- serialisation --- *)

let test_schedule_io_roundtrip () =
  let s = s1 () in
  let s' = Schedule_io.of_string dex (Schedule_io.to_string s) in
  Alcotest.(check (array (float 1e-12))) "starts" s.Schedule.starts s'.Schedule.starts;
  Alcotest.(check (array int)) "procs" s.Schedule.procs s'.Schedule.procs;
  for e = 0 to Dag.n_edges dex - 1 do
    Alcotest.(check (option (float 1e-12))) "comm" s.Schedule.comm_starts.(e) s'.Schedule.comm_starts.(e)
  done

let test_schedule_io_file_roundtrip () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "memsched_s1.sched" in
  Schedule_io.write (s1 ()) path;
  let s' = Schedule_io.read dex path in
  let p = plat ~mb:5. ~mr:5. in
  let r = validate_ok dex p s' in
  check_float "still valid after roundtrip" 6. r.Validator.makespan

let test_schedule_io_errors () =
  let bad text = try ignore (Schedule_io.of_string dex text); false with Invalid_argument _ -> true in
  check_bool "empty" true (bad "");
  check_bool "bad header" true (bad "nope");
  check_bool "wrong task count" true (bad "schedule 2 0\ntask 0 0 0\ntask 1 0 0\n");
  check_bool "missing comm" true (bad "schedule 4 1\ntask 0 0 0\ntask 1 0 0\ntask 2 0 0\ntask 3 0 0\n");
  check_bool "bad edge id" true
    (bad "schedule 4 1\ntask 0 0 0\ntask 1 0 0\ntask 2 0 0\ntask 3 0 0\ncomm 9 1\n")

(* ---------------------------------------------------------------- stats --- *)

let test_sched_stats () =
  let p = plat ~mb:5. ~mr:5. in
  let st = Sched_stats.compute dex p (s1 ()) in
  check_float "makespan" 6. st.Sched_stats.makespan;
  (* durations: T1 red 1, T2 blue 2, T3 red 3, T4 red 1 *)
  check_float "total work" 7. st.Sched_stats.total_work;
  check_int "transfers" 2 st.Sched_stats.n_transfers;
  check_float "volume" 2. st.Sched_stats.transfer_volume;
  check_int "blue tasks" 1 st.Sched_stats.tasks_on_blue;
  check_int "red tasks" 3 st.Sched_stats.tasks_on_red;
  check_float "peak blue" 2. st.Sched_stats.peak_blue;
  (match st.Sched_stats.per_proc with
  | [ p0; p1 ] ->
    check_float "proc0 busy" 2. p0.Sched_stats.busy;
    check_float "proc1 busy" 5. p1.Sched_stats.busy;
    check_float "proc1 idle" 1. p1.Sched_stats.idle
  | _ -> Alcotest.fail "two processors expected");
  (* mean utilisation = (2 + 5) / (2 * 6) *)
  check_float_eps 1e-9 "utilisation" (7. /. 12.) st.Sched_stats.mean_utilisation

let test_sched_stats_pp () =
  let p = plat ~mb:5. ~mr:5. in
  let st = Sched_stats.compute dex p (s1 ()) in
  check_bool "prints" true (String.length (Format.asprintf "%a" Sched_stats.pp st) > 0)

(* ---------------------------------------------------------- flat parity --- *)

(* The flat verification pipeline (PR 10) must be bit-identical to the
   verbatim pre-flattening implementations kept as *_reference: validator
   reports including message order, the trace arrays, every stats field —
   and the parallel validator must match the serial one for any --jobs. *)

let report_equal a b =
  match (a, b) with
  | Ok (ra : Validator.report), Ok (rb : Validator.report) ->
    Float.compare ra.Validator.makespan rb.Validator.makespan = 0
    && Float.compare ra.Validator.peak_blue rb.Validator.peak_blue = 0
    && Float.compare ra.Validator.peak_red rb.Validator.peak_red = 0
  | Error ea, Error eb -> List.equal String.equal ea eb
  | _ -> false

let float_arrays_equal a b =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> Float.compare x y = 0) a b

let parity_fixture seed =
  let g = dag_of_seed ~size:16 seed in
  let p = platform infinity in
  match Heuristics.memheft g p with
  | Ok s -> (g, p, s)
  | Error _ -> Alcotest.fail "memheft infeasible on an unbounded platform"

let test_validator_parity =
  qtest ~count:120 "flat validator equals reference (incl. corrupted schedules)" seed_arb
    (fun seed ->
      let g, p, s = parity_fixture seed in
      let agree s = report_equal (Validator.validate g p s) (Validator.validate_reference g p s) in
      let corrupt f =
        let s' = copy_sched s in
        f s';
        s'
      in
      agree s
      && agree (corrupt (fun s' -> s'.Schedule.starts.(0) <- -1.))
      && agree (corrupt (fun s' -> s'.Schedule.procs.(0) <- Platform.n_procs p))
      && agree
           (corrupt (fun s' ->
                Array.fill s'.Schedule.starts 0 (Array.length s'.Schedule.starts) 0.;
                Array.fill s'.Schedule.procs 0 (Array.length s'.Schedule.procs) 0;
                Array.fill s'.Schedule.comm_starts 0 (Array.length s'.Schedule.comm_starts) None)))

let test_trace_parity =
  qtest ~count:200 "flat memory trace equals reference bit-for-bit" seed_arb
    (fun seed ->
      let g, p, s = parity_fixture seed in
      let a = Events.memory_trace g p s and b = Events.memory_trace_reference g p s in
      float_arrays_equal a.Events.times b.Events.times
      && float_arrays_equal a.Events.blue b.Events.blue
      && float_arrays_equal a.Events.red b.Events.red)

let stats_equal (a : Sched_stats.t) (b : Sched_stats.t) =
  let per_proc_equal (x : Sched_stats.per_proc) (y : Sched_stats.per_proc) =
    x.Sched_stats.proc = y.Sched_stats.proc
    && x.Sched_stats.memory = y.Sched_stats.memory
    && x.Sched_stats.n_tasks = y.Sched_stats.n_tasks
    && Float.compare x.Sched_stats.busy y.Sched_stats.busy = 0
    && Float.compare x.Sched_stats.idle y.Sched_stats.idle = 0
  in
  Float.compare a.Sched_stats.makespan b.Sched_stats.makespan = 0
  && Float.compare a.Sched_stats.total_work b.Sched_stats.total_work = 0
  && List.equal per_proc_equal a.Sched_stats.per_proc b.Sched_stats.per_proc
  && Float.compare a.Sched_stats.mean_utilisation b.Sched_stats.mean_utilisation = 0
  && a.Sched_stats.n_transfers = b.Sched_stats.n_transfers
  && Float.compare a.Sched_stats.transfer_volume b.Sched_stats.transfer_volume = 0
  && Float.compare a.Sched_stats.transfer_time b.Sched_stats.transfer_time = 0
  && Float.compare a.Sched_stats.peak_blue b.Sched_stats.peak_blue = 0
  && Float.compare a.Sched_stats.peak_red b.Sched_stats.peak_red = 0
  && Float.compare a.Sched_stats.avg_blue b.Sched_stats.avg_blue = 0
  && Float.compare a.Sched_stats.avg_red b.Sched_stats.avg_red = 0
  && a.Sched_stats.tasks_on_blue = b.Sched_stats.tasks_on_blue
  && a.Sched_stats.tasks_on_red = b.Sched_stats.tasks_on_red

let test_stats_parity =
  qtest ~count:200 "flat stats equal reference on every field" seed_arb
    (fun seed ->
      let g, p, s = parity_fixture seed in
      stats_equal (Sched_stats.compute g p s) (Sched_stats.compute_reference g p s))

let test_scratch_reuse =
  (* One scratch reused across differently-sized instances (and a corrupted
     schedule in between) must give the same results as fresh computation:
     stale buffer contents from an earlier, larger trace must never leak
     into a later one. *)
  qtest ~count:120 "scratch reuse across instances equals fresh computation" seed_arb
    (fun seed ->
      let sc = Events.scratch () in
      let check seed' =
        let g, p, s = parity_fixture seed' in
        let trace_ok =
          let a = Events.memory_trace ~scratch:sc g p s in
          let b = Events.memory_trace g p s in
          float_arrays_equal a.Events.times b.Events.times
          && float_arrays_equal a.Events.blue b.Events.blue
          && float_arrays_equal a.Events.red b.Events.red
        in
        let validate_ok =
          report_equal (Validator.validate ~scratch:sc g p s) (Validator.validate g p s)
        in
        let bad = copy_sched s in
        bad.Schedule.starts.(0) <- -1.;
        let corrupted_ok =
          report_equal (Validator.validate ~scratch:sc g p bad) (Validator.validate g p bad)
        in
        let stats_ok =
          stats_equal (Sched_stats.compute ~scratch:sc g p s) (Sched_stats.compute g p s)
        in
        trace_ok && validate_ok && corrupted_ok && stats_ok
      in
      (* Three instances through the same scratch, sizes varying with seed. *)
      check seed && check (seed lxor 0x5bd1) && check (seed + 17))

let test_tasks_by_proc_parity =
  qtest ~count:200 "tasks_by_proc groups equal tasks_of_proc on every processor" seed_arb
    (fun seed ->
      let g, p, s = parity_fixture seed in
      let off, order = Schedule.tasks_by_proc g p s in
      let ok = ref (off.(0) = 0 && off.(Platform.n_procs p) = Dag.n_tasks g) in
      for q = 0 to Platform.n_procs p - 1 do
        let grouped = Array.to_list (Array.sub order off.(q) (off.(q + 1) - off.(q))) in
        if grouped <> Schedule.tasks_of_proc g p s q then ok := false
      done;
      !ok)

let test_tasks_by_proc_zero_duration_ties () =
  (* Fully-tied zero-duration tasks must stay in ascending-id order, exactly
     as [tasks_of_proc]'s stable sort leaves them. *)
  let g = build_dag ~tasks:[ ("a", 0., 0.); ("b", 2., 2.); ("c", 0., 0.) ] ~edges:[] in
  let p = plat ~mb:5. ~mr:5. in
  let s = Schedule.create g in
  let off, order = Schedule.tasks_by_proc g p s in
  check_int "all on proc 0" 3 (off.(1) - off.(0));
  Alcotest.(check (list int)) "zero-duration ties first, by id" [ 0; 2; 1 ]
    (Array.to_list (Array.sub order 0 3));
  Alcotest.(check (list int)) "matches tasks_of_proc" (Schedule.tasks_of_proc g p s 0)
    (Array.to_list (Array.sub order 0 3))

let test_tasks_by_proc_rejects_bad_proc () =
  let p = plat ~mb:5. ~mr:5. in
  let s = s1 () in
  s.Schedule.procs.(0) <- 9;
  Alcotest.check_raises "out of range"
    (Invalid_argument "Schedule.tasks_by_proc: processor index out of range") (fun () ->
      ignore (Schedule.tasks_by_proc dex p s))

let test_validator_jobs_parity () =
  let g = dag_of_seed ~size:40 11 in
  let p = platform infinity in
  let s =
    match Heuristics.memheft g p with
    | Ok s -> s
    | Error _ -> Alcotest.fail "memheft infeasible on an unbounded platform"
  in
  (* Collapse everything onto processor 0 to plant errors in several shards. *)
  Array.fill s.Schedule.starts 0 (Array.length s.Schedule.starts) 0.;
  Array.fill s.Schedule.procs 0 (Array.length s.Schedule.procs) 0;
  Array.fill s.Schedule.comm_starts 0 (Array.length s.Schedule.comm_starts) None;
  let serial = Validator.validate g p s in
  (match serial with
  | Ok _ -> Alcotest.fail "collapsed schedule accepted"
  | Error errs -> check_bool "several errors planted" true (List.length errs > 1));
  List.iter
    (fun jobs ->
      let pooled = Par.with_pool ~jobs (fun pool -> Validator.validate ~pool g p s) in
      check_bool (Printf.sprintf "jobs=%d report identical" jobs) true (report_equal serial pooled))
    [ 1; 2; 8 ]

(* ---------------------------------------------------------- event queue --- *)

(* The historical pipeline the heap must reproduce: cons-reversed
   accumulation followed by a stable sort on (time, kind). *)
let eq_reference inserts =
  List.stable_sort
    (fun (t1, k1, _) (t2, k2, _) ->
      let c = Float.compare t1 t2 in
      if c <> 0 then c else compare (k1 : int) k2)
    (List.rev inserts)

let eq_show (t, k, p) = Printf.sprintf "%h/%d/%d" t k p

let test_event_queue_basic () =
  let q = Event_queue.create () in
  check_bool "empty" true (Event_queue.is_empty q);
  check_bool "pop of empty" true (Event_queue.pop q = None);
  Event_queue.add q ~time:1.5 ~kind:1 7;
  check_int "length" 1 (Event_queue.length q);
  (match Event_queue.pop q with
  | Some (t, k, p) ->
    check_float "time" 1.5 t;
    check_int "kind" 1 k;
    check_int "payload" 7 p
  | None -> Alcotest.fail "expected the single entry");
  check_bool "drained" true (Event_queue.is_empty q)

let test_event_queue_nan_rejected () =
  Alcotest.check_raises "NaN time" (Invalid_argument "Event_queue.add: NaN time") (fun () ->
      Event_queue.add (Event_queue.create ()) ~time:(0. /. 0.) ~kind:0 ())

let test_event_queue_tie_order () =
  let q = Event_queue.create () in
  List.iter (fun p -> Event_queue.add q ~time:2. ~kind:0 p) [ 0; 1; 2 ];
  Event_queue.add q ~time:2. ~kind:1 3;
  Event_queue.add q ~time:1. ~kind:1 4;
  let order = List.map (fun (_, _, p) -> p) (Event_queue.drain q) in
  (* time 1 first; then the (2, 0) ties in reverse insertion order; kind 1 last. *)
  Alcotest.(check (list int)) "deterministic tie order" [ 4; 2; 1; 0; 3 ] order

let test_event_queue_drain_into () =
  let q = Event_queue.create ~capacity:2 () in
  List.iter
    (fun (t, k, p) -> Event_queue.add q ~time:t ~kind:k p)
    [ (2., 0, 0); (1., 1, 1); (2., 0, 2) ];
  let n = Event_queue.length q in
  let times = Array.make n 0. and kinds = Array.make n 0 and payloads = Array.make n (-1) in
  check_int "count" 3 (Event_queue.drain_into q ~times ~kinds ~payloads);
  (* time 1 first; then the (2, 0) ties in reverse insertion order. *)
  Alcotest.(check (list int)) "payload order" [ 1; 2; 0 ] (Array.to_list payloads);
  check_float "first time" 1. times.(0);
  check_int "first kind" 1 kinds.(0);
  check_bool "emptied" true (Event_queue.is_empty q);
  Alcotest.check_raises "short destination"
    (Invalid_argument "Event_queue.drain_into: destination arrays shorter than the queue")
    (fun () ->
      let q = Event_queue.create () in
      Event_queue.add q ~time:0. ~kind:0 0;
      ignore (Event_queue.drain_into q ~times:[||] ~kinds:[||] ~payloads:[||]))

let test_event_queue_vs_reference =
  qtest ~count:500 "heap order equals reversed-accumulator + stable sort"
    QCheck.(list (pair (int_range 0 5) (int_range 0 1)))
    (fun raw ->
      let inserts = List.mapi (fun idx (t, k) -> (float_of_int t /. 2., k, idx)) raw in
      let q = Event_queue.create () in
      List.iter (fun (time, kind, p) -> Event_queue.add q ~time ~kind p) inserts;
      List.map eq_show (Event_queue.drain q) = List.map eq_show (eq_reference inserts))

(* --------------------------------------------------- heuristic schedules
   are also exercised against the oracle in test_heuristics; here we only
   pin the paper example. *)

let () =
  Alcotest.run "sim"
    [ ( "schedule",
        [ Alcotest.test_case "memory_of" `Quick test_memory_of;
          Alcotest.test_case "durations" `Quick test_durations;
          Alcotest.test_case "cut edges" `Quick test_cut_edges;
          Alcotest.test_case "tasks_of_proc" `Quick test_tasks_of_proc ] );
      ( "events",
        [ Alcotest.test_case "paper usage values" `Quick test_memory_usage_paper_values;
          Alcotest.test_case "paper peaks" `Quick test_memory_peaks_paper;
          Alcotest.test_case "trace shape" `Quick test_trace_shape;
          Alcotest.test_case "usage_at" `Quick test_usage_at_interpolation ] );
      ( "validator",
        [ Alcotest.test_case "accepts s1" `Quick test_validator_accepts_s1;
          Alcotest.test_case "rejects memory overflow" `Quick test_validator_rejects_memory;
          Alcotest.test_case "rejects overlap" `Quick test_validator_rejects_overlap;
          Alcotest.test_case "rejects missing transfer" `Quick test_validator_rejects_missing_comm;
          Alcotest.test_case "rejects spurious transfer" `Quick test_validator_rejects_spurious_comm;
          Alcotest.test_case "rejects late transfer" `Quick test_validator_rejects_late_comm;
          Alcotest.test_case "rejects early transfer" `Quick test_validator_rejects_early_comm;
          Alcotest.test_case "rejects precedence violation" `Quick test_validator_rejects_precedence;
          Alcotest.test_case "rejects bad processor" `Quick test_validator_rejects_bad_proc;
          Alcotest.test_case "rejects negative start" `Quick test_validator_rejects_negative_start;
          Alcotest.test_case "zero-duration tasks share instants" `Quick
            test_validator_zero_duration_share_instant;
          Alcotest.test_case "validate_exn" `Quick test_validate_exn ] );
      ( "mutation",
        [ Alcotest.test_case "processor overlap" `Quick test_mutation_overlap;
          Alcotest.test_case "dropped transfer" `Quick test_mutation_dropped_transfer;
          Alcotest.test_case "spurious transfer" `Quick test_mutation_spurious_transfer;
          Alcotest.test_case "flow violation" `Quick test_mutation_flow_violation;
          Alcotest.test_case "memory overrun" `Quick test_mutation_memory_overrun;
          Alcotest.test_case "index out of range" `Quick test_mutation_out_of_range ] );
      ( "serialisation",
        [ Alcotest.test_case "string roundtrip" `Quick test_schedule_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_schedule_io_file_roundtrip;
          Alcotest.test_case "errors" `Quick test_schedule_io_errors ] );
      ( "stats",
        [ Alcotest.test_case "paper example" `Quick test_sched_stats;
          Alcotest.test_case "pp" `Quick test_sched_stats_pp ] );
      ( "flat-parity",
        [ test_validator_parity;
          test_trace_parity;
          test_stats_parity;
          test_scratch_reuse;
          test_tasks_by_proc_parity;
          Alcotest.test_case "zero-duration ties" `Quick test_tasks_by_proc_zero_duration_ties;
          Alcotest.test_case "bad processor rejected" `Quick test_tasks_by_proc_rejects_bad_proc;
          Alcotest.test_case "jobs 1/2/8 parity" `Quick test_validator_jobs_parity ] );
      ( "event-queue",
        [ Alcotest.test_case "basic" `Quick test_event_queue_basic;
          Alcotest.test_case "NaN rejected" `Quick test_event_queue_nan_rejected;
          Alcotest.test_case "tie order" `Quick test_event_queue_tie_order;
          Alcotest.test_case "drain_into" `Quick test_event_queue_drain_into;
          test_event_queue_vs_reference ] );
      ( "gantt",
        [ Alcotest.test_case "render" `Quick test_gantt_render;
          Alcotest.test_case "memory profile" `Quick test_gantt_memory_profile ] ) ]
