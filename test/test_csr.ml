(* Flat (CSR / SoA) graph views versus the list-based reference accessors.

   The scheduling hot paths walk [Dag.Csr] arrays; the [succ]/[pred]/
   [children]/[parents] lists are the specification.  The property tests
   check full structural agreement — including float-exact in/out size
   aggregates, whose fold order the CSR build must replicate — over the
   differential fuzzer's DAG families, plus the builder/platform non-finite
   input guards and a 100k-task construction smoke test. *)

open Helpers

let check_int_list msg = Alcotest.(check (list int)) msg

(* Structural A/B between the CSR arrays and the list accessors. *)
let check_csr_equiv g =
  let n = Dag.n_tasks g and m = Dag.n_edges g in
  let succ_off = Dag.Csr.succ_off g
  and succ_eid = Dag.Csr.succ_eid g
  and succ_dst = Dag.Csr.succ_dst g
  and pred_off = Dag.Csr.pred_off g
  and pred_eid = Dag.Csr.pred_eid g
  and pred_src = Dag.Csr.pred_src g in
  check_int "succ_off length" (n + 1) (Array.length succ_off);
  check_int "pred_off length" (n + 1) (Array.length pred_off);
  check_int "succ_off total" m succ_off.(n);
  check_int "pred_off total" m pred_off.(n);
  let e_src = Dag.Csr.e_src g
  and e_dst = Dag.Csr.e_dst g
  and e_size = Dag.Csr.e_size g
  and e_comm = Dag.Csr.e_comm g in
  for eid = 0 to m - 1 do
    let e = Dag.edge g eid in
    check_int "e_src" e.Dag.src e_src.(eid);
    check_int "e_dst" e.Dag.dst e_dst.(eid);
    check_float "e_size" e.Dag.size e_size.(eid);
    check_float "e_comm" e.Dag.comm e_comm.(eid)
  done;
  let w_blue = Dag.Csr.w_blue g and w_red = Dag.Csr.w_red g in
  let in_sz = Dag.Csr.in_sz g and out_sz = Dag.Csr.out_sz g in
  let max_in = ref 0 in
  for i = 0 to n - 1 do
    let t = Dag.task g i in
    check_float "w_blue" t.Dag.w_blue w_blue.(i);
    check_float "w_red" t.Dag.w_red w_red.(i);
    let row off eid_arr = Array.to_list (Array.sub eid_arr off.(i) (off.(i + 1) - off.(i))) in
    let succ_row = row succ_off succ_eid and pred_row = row pred_off pred_eid in
    check_int_list "succ eids" (List.map (fun e -> e.Dag.eid) (Dag.succ g i)) succ_row;
    check_int_list "pred eids" (List.map (fun e -> e.Dag.eid) (Dag.pred g i)) pred_row;
    check_int_list "succ dsts"
      (List.map (fun e -> e.Dag.dst) (Dag.succ g i))
      (row succ_off succ_dst);
    check_int_list "pred srcs"
      (List.map (fun e -> e.Dag.src) (Dag.pred g i))
      (row pred_off pred_src);
    check_int_list "children" (List.map (fun e -> e.Dag.dst) (Dag.succ g i)) (Dag.children g i);
    check_int_list "parents" (List.map (fun e -> e.Dag.src) (Dag.pred g i)) (Dag.parents g i);
    (* Same left-fold order as the historical list accessors: exact equality. *)
    let sum edges = List.fold_left (fun acc e -> acc +. e.Dag.size) 0. edges in
    if not (Float.equal (sum (Dag.pred g i)) in_sz.(i)) then
      Alcotest.failf "in_sz mismatch at task %d" i;
    if not (Float.equal (sum (Dag.succ g i)) out_sz.(i)) then
      Alcotest.failf "out_sz mismatch at task %d" i;
    check_int "in_degree" (List.length (Dag.pred g i)) (Dag.Csr.in_degree g i);
    check_int "out_degree" (List.length (Dag.succ g i)) (Dag.Csr.out_degree g i);
    if Dag.Csr.in_degree g i > !max_in then max_in := Dag.Csr.in_degree g i
  done;
  check_int "max_in_degree" !max_in (Dag.Csr.max_in_degree g);
  (* Topological layers: sources at 0, every other task one past its deepest
     parent; the grouped index lists exactly the tasks of each layer. *)
  let layer_of = Dag.Csr.layer_of g
  and layer_off = Dag.Csr.layer_off g
  and layer_tasks = Dag.Csr.layer_tasks g in
  let n_layers = Dag.Csr.n_layers g in
  check_int "layer_off length" (n_layers + 1) (Array.length layer_off);
  check_int "layer_tasks length" n (Array.length layer_tasks);
  for i = 0 to n - 1 do
    let expect =
      List.fold_left (fun acc p -> max acc (layer_of.(p) + 1)) 0 (Dag.parents g i)
    in
    check_int "layer_of" expect layer_of.(i)
  done;
  for l = 0 to n_layers - 1 do
    for k = layer_off.(l) to layer_off.(l + 1) - 1 do
      check_int "layer grouping" l layer_of.(layer_tasks.(k));
      if k > layer_off.(l) && layer_tasks.(k - 1) >= layer_tasks.(k) then
        Alcotest.failf "layer %d tasks not ascending" l
    done
  done

let csr_fuzz_property =
  qtest ~count:60 "CSR = list adjacency on fuzz families" seed_arb (fun seed ->
      let inst = Fuzz_gen.instance (Rng.create seed) in
      check_csr_equiv inst.Fuzz_instance.dag;
      true)

let test_csr_kernels () =
  check_csr_equiv (Lu.generate ~n:8 ());
  check_csr_equiv (Lu.generate ~pipeline_broadcasts:false ~n:8 ());
  check_csr_equiv (Cholesky.generate ~n:8 ());
  check_csr_equiv (star 7);
  check_csr_equiv (build_dag ~tasks:[ ("solo", 1., 2.) ] ~edges:[])

(* {2 Non-finite input rejection} *)

let expect_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: accepted a non-finite value" msg

let test_builder_rejects_non_finite () =
  let fresh () = Dag.Builder.create () in
  expect_invalid "add_task nan w_blue" (fun () ->
      Dag.Builder.add_task (fresh ()) ~w_blue:nan ~w_red:1. ());
  expect_invalid "add_task nan w_red" (fun () ->
      Dag.Builder.add_task (fresh ()) ~w_blue:1. ~w_red:nan ());
  expect_invalid "add_task inf w_blue" (fun () ->
      Dag.Builder.add_task (fresh ()) ~w_blue:infinity ~w_red:1. ());
  expect_invalid "add_task -inf w_red" (fun () ->
      Dag.Builder.add_task (fresh ()) ~w_blue:1. ~w_red:neg_infinity ());
  let two_tasks () =
    let b = fresh () in
    ignore (Dag.Builder.add_task b ~w_blue:1. ~w_red:1. ());
    ignore (Dag.Builder.add_task b ~w_blue:1. ~w_red:1. ());
    b
  in
  expect_invalid "add_edge nan size" (fun () ->
      Dag.Builder.add_edge (two_tasks ()) ~src:0 ~dst:1 ~size:nan ~comm:0.);
  expect_invalid "add_edge inf size" (fun () ->
      Dag.Builder.add_edge (two_tasks ()) ~src:0 ~dst:1 ~size:infinity ~comm:0.);
  expect_invalid "add_edge nan comm" (fun () ->
      Dag.Builder.add_edge (two_tasks ()) ~src:0 ~dst:1 ~size:1. ~comm:nan);
  expect_invalid "add_edge inf comm" (fun () ->
      Dag.Builder.add_edge (two_tasks ()) ~src:0 ~dst:1 ~size:1. ~comm:infinity);
  (* Historical guards still hold alongside the finite checks. *)
  expect_invalid "add_task negative" (fun () ->
      Dag.Builder.add_task (fresh ()) ~w_blue:(-1.) ~w_red:1. ());
  expect_invalid "add_edge negative" (fun () ->
      Dag.Builder.add_edge (two_tasks ()) ~src:0 ~dst:1 ~size:(-1.) ~comm:0.)

let test_platform_rejects_nan () =
  expect_invalid "m_blue nan" (fun () ->
      Platform.make ~p_blue:1 ~p_red:1 ~m_blue:nan ~m_red:1.);
  expect_invalid "m_red nan" (fun () ->
      Platform.make ~p_blue:1 ~p_red:1 ~m_blue:1. ~m_red:nan);
  (* An infinite capacity means "unbounded" and stays legal. *)
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:infinity ~m_red:infinity in
  check_float "inf cap kept" infinity (Platform.capacity p Platform.Blue)

(* {2 100k-task construction smoke}

   A layered mesh of 1000 x 100 tasks (each wired to two tasks of the next
   layer): building and finalising it must stay linear in tasks + edges.
   The allocation bound is generous per element but far below anything a
   quadratic construction would allocate. *)

let test_build_100k () =
  let layers = 1000 and width = 100 in
  let n = layers * width in
  let b = Dag.Builder.create () in
  for _ = 1 to n do
    ignore (Dag.Builder.add_task b ~w_blue:1. ~w_red:2. ())
  done;
  for l = 0 to layers - 2 do
    for k = 0 to width - 1 do
      let src = (l * width) + k in
      Dag.Builder.add_edge b ~src ~dst:(((l + 1) * width) + k) ~size:1. ~comm:1.;
      Dag.Builder.add_edge b
        ~src
        ~dst:(((l + 1) * width) + ((k + 1) mod width))
        ~size:2. ~comm:1.
    done
  done;
  let before = Gc.allocated_bytes () in
  let g = Dag.Builder.finalize b in
  let allocated = Gc.allocated_bytes () -. before in
  check_int "n_tasks" n (Dag.n_tasks g);
  check_int "n_edges" (2 * width * (layers - 1)) (Dag.n_edges g);
  check_int "n_layers" layers (Dag.Csr.n_layers g);
  check_int "max_in_degree" 2 (Dag.Csr.max_in_degree g);
  let elems = float_of_int (Dag.n_tasks g + Dag.n_edges g) in
  if allocated > 2000. *. elems then
    Alcotest.failf "finalize allocated %.0f bytes (%.0f per task+edge)" allocated
      (allocated /. elems)

let () =
  Alcotest.run "csr"
    [ ( "adjacency",
        [ csr_fuzz_property; Alcotest.test_case "kernel families" `Quick test_csr_kernels ] );
      ( "validation",
        [ Alcotest.test_case "builder non-finite" `Quick test_builder_rejects_non_finite;
          Alcotest.test_case "platform nan" `Quick test_platform_rejects_nan ] );
      ("scale", [ Alcotest.test_case "100k-task build" `Quick test_build_100k ]) ]
